"""Tests for repro.cli and repro.analysis.report."""

from __future__ import annotations

import pytest

from repro.analysis.report import generate_report
from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--sessions", "50"])
        assert args.experiment == "table1"
        assert args.sessions == 50

    def test_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["all"])
        assert args.sessions == 1000
        assert args.ml_sessions == 800


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure4" in out

    def test_run_table1(self, capsys):
        assert main(["table1", "--sessions", "120", "--seed", "61"]) == 0
        out = capsys.readouterr().out
        assert "Downloaded CSS" in out

    def test_run_figure3_reuses_cache(self, capsys):
        assert main(["figure3", "--sessions", "120", "--seed", "61"]) == 0
        out = capsys.readouterr().out
        assert "Robot" in out


class TestTraceCommands:
    def test_record_then_replay_round_trip(self, capsys, tmp_path):
        trace = str(tmp_path / "t.log.gz")
        probes = str(tmp_path / "t.keys.gz")
        assert main([
            "record", "--out", trace, "--probes", probes,
            "--mix", "smoke", "--sessions", "40", "--seed", "61",
            "--nodes", "2",
        ]) == 0
        recorded = capsys.readouterr().out
        assert "analyzable sessions:" in recorded

        assert main([
            "replay", "--trace", trace, "--probes", probes,
            "--nodes", "2", "--sorted",
        ]) == 0
        replayed = capsys.readouterr().out
        assert "0 malformed lines skipped" in replayed
        # The replayed census reproduces the recorded census verbatim.
        census = lambda text: sorted(
            line.strip() for line in text.splitlines()
            if line.startswith("  ") and not line.startswith("  malformed")
        )
        assert census(replayed) == census(recorded.split("sessions:")[-1])

    def test_record_parser_defaults(self):
        from repro.cli import build_record_parser

        args = build_record_parser().parse_args(["--out", "x.log"])
        assert args.mix == "codeen_week"
        assert args.mode == "sequential"
        assert args.arrival == "uniform"

    def test_replay_parser_merges_multiple_traces(self):
        from repro.cli import build_replay_parser

        args = build_replay_parser().parse_args(
            ["--trace", "a.log", "b.log", "--strict"]
        )
        assert args.trace == ["a.log", "b.log"]
        assert args.strict

    def test_score_rounds_requires_executor(self, capsys):
        assert main([
            "replay", "--trace", "x.log", "--score-rounds", "8",
        ]) == 2
        assert "--executor" in capsys.readouterr().err


class TestMetricsCommands:
    """The observability acceptance path: --metrics-out + repro stats."""

    @pytest.fixture(scope="class")
    def replayed(self, tmp_path_factory):
        import contextlib
        import io

        tmp_path = tmp_path_factory.mktemp("metrics")
        trace = str(tmp_path / "t.log.gz")
        probes = str(tmp_path / "t.keys.gz")
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            assert main([
                "record", "--out", trace, "--probes", probes,
                "--mix", "smoke", "--sessions", "40", "--seed", "61",
                "--nodes", "2",
            ]) == 0
        out = str(tmp_path / "m.json")
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            assert main([
                "replay", "--trace", trace, "--probes", probes,
                "--nodes", "2", "--sorted", "--shards", "2",
                "--executor", "thread", "--score-rounds", "8",
                "--flight-interval", "3600",
                "--metrics-out", out,
            ]) == 0
        return out, sink.getvalue()

    @pytest.fixture(scope="class")
    def metrics_file(self, replayed):
        return replayed[0]

    def test_snapshot_has_advertised_content(self, metrics_file):
        from repro.obs.export import snapshot_from_json

        with open(metrics_file, encoding="utf-8") as handle:
            snap, flight = snapshot_from_json(handle.read())
        assert sum(
            p.count for p in snap.series("repro_ingress_queue_wait_seconds")
        ) > 0
        shard_timers = snap.series("repro_detection_seconds")
        assert {dict(p.labels)["shard"] for p in shard_timers} == {"00", "01"}
        assert sum(p.count for p in shard_timers) > 0
        assert sum(
            p.count for p in snap.series("repro_batch_flush_sessions")
        ) > 0
        assert flight  # --flight-interval actually sampled

    def test_replay_summary_surfaces_lane_telemetry(self, replayed):
        _, out = replayed
        assert "ingress lanes:" in out
        assert "lane 0: admitted=" in out
        assert "queue high-watermark=" in out
        assert "micro-batch scoring:" in out
        assert "wrote metrics snapshot" in out

    @pytest.mark.parametrize("fmt", ["table", "prometheus", "json"])
    def test_stats_formats(self, metrics_file, capsys, fmt):
        assert main(["stats", metrics_file, "--format", fmt]) == 0
        out = capsys.readouterr().out
        assert "repro_detection_seconds" in out
        if fmt == "prometheus":
            assert "# TYPE repro_detection_seconds histogram" in out
            assert 'le="+Inf"' in out

    def test_stats_deterministic_filter(self, metrics_file, capsys):
        assert main([
            "stats", metrics_file, "--format", "json", "--deterministic",
        ]) == 0
        out = capsys.readouterr().out
        assert '"wall":true' not in out

    def test_stats_flight_frames(self, metrics_file, capsys):
        assert main(["stats", metrics_file, "--flight"]) == 0
        out = capsys.readouterr().out
        assert "--- t=" in out

    def test_stats_rejects_non_snapshot(self, tmp_path, capsys):
        bogus = tmp_path / "not_metrics.json"
        bogus.write_text('{"points": []}')
        assert main(["stats", str(bogus)]) == 2
        assert "schema" in capsys.readouterr().err


class TestTraceProfileCommands:
    """Span tracing from the CLI: --trace-out and repro profile."""

    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        import contextlib
        import io

        tmp_path = tmp_path_factory.mktemp("spans")
        trace = str(tmp_path / "t.log.gz")
        probes = str(tmp_path / "t.keys.gz")
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            assert main([
                "record", "--out", trace, "--probes", probes,
                "--mix", "smoke", "--sessions", "40", "--seed", "61",
                "--nodes", "2",
            ]) == 0
        spans = str(tmp_path / "spans.json")
        sink = io.StringIO()
        with contextlib.redirect_stdout(sink):
            assert main([
                "replay", "--trace", trace, "--probes", probes,
                "--nodes", "2", "--sorted",
                "--trace-out", spans, "--trace-sample", "4",
            ]) == 0
        return spans, sink.getvalue()

    def test_trace_out_writes_valid_trace_events(self, traced):
        import json

        spans, out = traced
        assert "sampled span trace(s)" in out
        document = json.loads(open(spans, encoding="utf-8").read())
        assert document["otherData"]["schema"] == "repro.spans/v1"
        assert document["otherData"]["clock"] == "wall"
        phases = {e["ph"] for e in document["traceEvents"]}
        assert phases == {"M", "X"}

    def test_profile_renders_attribution_table(self, traced, capsys):
        spans, _ = traced
        assert main(["profile", spans]) == 0
        out = capsys.readouterr().out
        assert "wall clock" in out
        assert "handle" in out
        assert "detection" in out
        assert "attributed to named stages:" in out

    def test_profile_limit(self, traced, capsys):
        spans, _ = traced
        assert main(["profile", spans, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        # Header + summary + exactly one stage row.
        stage_rows = [
            line for line in out.splitlines()[2:]
            if line and not line.startswith("attributed")
        ]
        assert len(stage_rows) == 1

    def test_profile_rejects_non_trace_file(self, tmp_path, capsys):
        bogus = tmp_path / "nope.json"
        bogus.write_text('{"traceEvents": []}')
        assert main(["profile", str(bogus)]) == 2
        assert "schema" in capsys.readouterr().err

    def test_trace_sample_needs_trace_out(self, capsys):
        assert main([
            "replay", "--trace", "x.log", "--trace-sample", "4",
        ]) == 2
        assert "--trace-out" in capsys.readouterr().err

    def test_record_trace_out_needs_pipelined_mode(self, tmp_path, capsys):
        assert main([
            "record", "--out", str(tmp_path / "t.log"),
            "--trace-out", str(tmp_path / "s.json"),
            "--mix", "smoke", "--sessions", "10",
        ]) == 2
        assert "pipelined" in capsys.readouterr().err


class TestExperimentMetricsOut:
    """--metrics-out / --flight-interval on experiment subcommands."""

    def test_table1_writes_workload_metrics(self, tmp_path, capsys):
        out = str(tmp_path / "m.json")
        assert main([
            "table1", "--sessions", "120", "--seed", "61",
            "--flight-interval", "90000", "--metrics-out", out,
        ]) == 0
        assert "wrote metrics snapshot" in capsys.readouterr().out
        from repro.obs.export import snapshot_from_json

        snap, flight = snapshot_from_json(open(out, encoding="utf-8").read())
        assert snap.series("repro_detection_seconds")
        assert flight  # --flight-interval reached the workload engine

    def test_flight_interval_rejected_when_runner_lacks_it(self, capsys):
        assert main([
            "figure3", "--sessions", "120", "--seed", "61",
            "--flight-interval", "90000",
        ]) == 2
        assert "--flight-interval" in capsys.readouterr().err

    def test_metrics_out_rejected_for_all(self, capsys):
        assert main([
            "all", "--metrics-out", "m.json",
        ]) == 2
        assert "single workload experiment" in capsys.readouterr().err


class TestReport:
    def test_subset_report(self):
        report = generate_report(
            n_sessions=120,
            seed=61,
            experiments=("table1", "figure2"),
        )
        text = report.render()
        assert "table1" in text
        assert "figure2" in text
        assert report.total_seconds > 0
        assert len(report.sections) == 2

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            generate_report(experiments=("nope",))
