"""Tests for repro.cli and repro.analysis.report."""

from __future__ import annotations

import pytest

from repro.analysis.report import generate_report
from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--sessions", "50"])
        assert args.experiment == "table1"
        assert args.sessions == 50

    def test_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["all"])
        assert args.sessions == 1000
        assert args.ml_sessions == 800


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure4" in out

    def test_run_table1(self, capsys):
        assert main(["table1", "--sessions", "120", "--seed", "61"]) == 0
        out = capsys.readouterr().out
        assert "Downloaded CSS" in out

    def test_run_figure3_reuses_cache(self, capsys):
        assert main(["figure3", "--sessions", "120", "--seed", "61"]) == 0
        out = capsys.readouterr().out
        assert "Robot" in out


class TestTraceCommands:
    def test_record_then_replay_round_trip(self, capsys, tmp_path):
        trace = str(tmp_path / "t.log.gz")
        probes = str(tmp_path / "t.keys.gz")
        assert main([
            "record", "--out", trace, "--probes", probes,
            "--mix", "smoke", "--sessions", "40", "--seed", "61",
            "--nodes", "2",
        ]) == 0
        recorded = capsys.readouterr().out
        assert "analyzable sessions:" in recorded

        assert main([
            "replay", "--trace", trace, "--probes", probes,
            "--nodes", "2", "--sorted",
        ]) == 0
        replayed = capsys.readouterr().out
        assert "0 malformed lines skipped" in replayed
        # The replayed census reproduces the recorded census verbatim.
        census = lambda text: sorted(
            line.strip() for line in text.splitlines()
            if line.startswith("  ") and not line.startswith("  malformed")
        )
        assert census(replayed) == census(recorded.split("sessions:")[-1])

    def test_record_parser_defaults(self):
        from repro.cli import build_record_parser

        args = build_record_parser().parse_args(["--out", "x.log"])
        assert args.mix == "codeen_week"
        assert args.mode == "sequential"
        assert args.arrival == "uniform"

    def test_replay_parser_merges_multiple_traces(self):
        from repro.cli import build_replay_parser

        args = build_replay_parser().parse_args(
            ["--trace", "a.log", "b.log", "--strict"]
        )
        assert args.trace == ["a.log", "b.log"]
        assert args.strict


class TestReport:
    def test_subset_report(self):
        report = generate_report(
            n_sessions=120,
            seed=61,
            experiments=("table1", "figure2"),
        )
        text = report.render()
        assert "table1" in text
        assert "figure2" in text
        assert report.total_seconds > 0
        assert len(report.sections) == 2

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            generate_report(experiments=("nope",))
