"""Tests for repro.html.serializer."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.html.document import Element, Text
from repro.html.parser import parse_html
from repro.html.serializer import serialize


class TestSerialize:
    def test_simple(self):
        e = Element("p")
        e.append(Text("x"))
        assert serialize(e) == "<p>x</p>"

    def test_attributes_quoted(self):
        e = Element("a", {"href": "x.html"})
        assert serialize(e) == '<a href="x.html"></a>'

    def test_attribute_escaping(self):
        e = Element("a", {"title": 'say "hi" & bye'})
        assert 'title="say &quot;hi&quot; &amp; bye"' in serialize(e)

    def test_void_element_no_close(self):
        e = Element("img", {"src": "x"})
        assert serialize(e) == '<img src="x">'

    def test_script_raw_text_survives(self):
        e = Element("script")
        e.append(Text("if (a<b) { c('<p>'); }"))
        assert serialize(e) == "<script>if (a<b) { c('<p>'); }</script>"


class TestRoundTrip:
    def test_parse_serialize_parse_stable(self):
        html = (
            '<html><head><title>t</title><link rel="stylesheet" href="/a.css">'
            '</head><body onmousemove="return f();"><p>x</p>'
            '<img src="/i.jpg"><script>var a = 1;</script></body></html>'
        )
        once = serialize(parse_html(html))
        twice = serialize(parse_html(once))
        assert once == twice


_tags = st.sampled_from(["div", "p", "span", "ul", "li", "b"])
_texts = st.text(
    alphabet="abcdefghij 0123456789", min_size=0, max_size=12
)


@st.composite
def _trees(draw, depth=0):
    element = Element(draw(_tags))
    n_children = draw(st.integers(min_value=0, max_value=3 if depth < 2 else 0))
    for _ in range(n_children):
        if draw(st.booleans()) and depth < 2:
            element.append(draw(_trees(depth=depth + 1)))
        else:
            text = draw(_texts)
            if text:
                element.append(Text(text))
    return element


@settings(max_examples=50, deadline=None)
@given(tree=_trees())
def test_property_serialize_parse_preserves_text(tree):
    html = serialize(tree)
    reparsed = parse_html(html)
    assert reparsed.text_content() == tree.text_content()


@settings(max_examples=50, deadline=None)
@given(tree=_trees())
def test_property_serialize_is_idempotent_through_parse(tree):
    once = serialize(parse_html(serialize(tree)))
    twice = serialize(parse_html(once))
    assert once == twice
