"""Tests for repro.html.links."""

from __future__ import annotations

from repro.html.links import extract_references


class TestEmbeddedObjects:
    def test_stylesheet(self):
        refs = extract_references(
            '<link rel="stylesheet" href="/a.css"><link rel="icon" href="/f.ico">'
        )
        assert refs.stylesheets == ["/a.css"]
        assert "/f.ico" in refs.images

    def test_link_without_href_ignored(self):
        refs = extract_references('<link rel="stylesheet">')
        assert refs.stylesheets == []

    def test_external_script(self):
        refs = extract_references('<script src="/s.js"></script>')
        assert refs.scripts == ["/s.js"]
        assert refs.inline_scripts == []

    def test_inline_script(self):
        refs = extract_references("<script>var a = 1;</script>")
        assert refs.scripts == []
        assert refs.inline_scripts == ["var a = 1;"]

    def test_images_and_audio(self):
        refs = extract_references(
            '<img src="/i.jpg"><embed src="/s.wav">'
        )
        assert refs.images == ["/i.jpg"]
        assert refs.audio == ["/s.wav"]

    def test_embedded_objects_aggregate(self):
        refs = extract_references(
            '<link rel="stylesheet" href="/a.css"><script src="/s.js">'
            '</script><img src="/i.jpg">'
        )
        assert set(refs.embedded_objects) == {"/a.css", "/s.js", "/i.jpg"}


class TestLinks:
    def test_visible_link(self):
        refs = extract_references('<a href="/x.html">go</a>')
        assert refs.visible_links == ["/x.html"]
        assert refs.hidden_links == []

    def test_mailto_ignored(self):
        refs = extract_references('<a href="mailto:a@b.c">mail</a>')
        assert refs.visible_links == []

    def test_javascript_href_ignored(self):
        refs = extract_references('<a href="javascript:f()">x</a>')
        assert refs.visible_links == []

    def test_hidden_by_transparent_image(self):
        refs = extract_references(
            '<a href="/hidden.html">'
            '<img src="/transp_1x1.jpg" width="1" height="1"></a>'
        )
        assert refs.hidden_links == ["/hidden.html"]
        assert refs.visible_links == []

    def test_hidden_by_style(self):
        refs = extract_references(
            '<a href="/h.html" style="display: none">secret</a>'
        )
        assert refs.hidden_links == ["/h.html"]

    def test_anchor_with_text_is_visible(self):
        refs = extract_references(
            '<a href="/x.html"><img src="/transp_1x1.jpg" width="1" '
            'height="1">label</a>'
        )
        assert refs.visible_links == ["/x.html"]

    def test_anchor_with_normal_image_is_visible(self):
        refs = extract_references(
            '<a href="/x.html"><img src="/banner.jpg" width="468" '
            'height="60"></a>'
        )
        assert refs.visible_links == ["/x.html"]

    def test_all_links_union(self):
        refs = extract_references(
            '<a href="/v.html">v</a>'
            '<a href="/h.html"><img src="/transp_1x1.jpg" width="1" height="1"></a>'
        )
        assert set(refs.all_links) == {"/v.html", "/h.html"}


class TestBodyHandlers:
    def test_onmousemove_captured(self):
        refs = extract_references(
            '<body onmousemove="return f();"><p>x</p></body>'
        )
        assert refs.body_event_handlers == {"onmousemove": "return f();"}

    def test_non_event_attrs_ignored(self):
        refs = extract_references('<body class="x"><p>y</p></body>')
        assert refs.body_event_handlers == {}
