"""Tests for repro.html.parser."""

from __future__ import annotations

from repro.html.document import Element, Text
from repro.html.parser import parse_html


class TestStructure:
    def test_root_is_html(self):
        root = parse_html("<p>x</p>")
        assert root.tag == "html"

    def test_head_and_body_synthesised(self):
        root = parse_html("<p>x</p>")
        assert root.find("head") is not None
        body = root.find("body")
        assert body is not None
        assert body.find("p") is not None

    def test_explicit_head_body_kept(self):
        root = parse_html(
            "<html><head><title>t</title></head><body><p>x</p></body></html>"
        )
        head = root.find("head")
        assert head.find("title") is not None
        assert root.find("body").find("p") is not None

    def test_title_moved_to_head(self):
        root = parse_html("<title>t</title><p>x</p>")
        assert root.find("head").find("title") is not None

    def test_nesting(self):
        root = parse_html("<div><ul><li>a</li><li>b</li></ul></div>")
        ul = root.find("ul")
        assert len(ul.find_all("li")) == 2

    def test_void_elements_take_no_children(self):
        root = parse_html("<img src='x'><p>y</p>")
        img = root.find("img")
        assert img.children == []
        assert root.find("p") is not None


class TestRecovery:
    def test_stray_end_tag_ignored(self):
        root = parse_html("<p>x</p></div>")
        assert root.find("p") is not None

    def test_implicit_close_pops_to_ancestor(self):
        root = parse_html("<div><span>x</div>after")
        div = root.find("div")
        assert div.find("span") is not None

    def test_text_content(self):
        root = parse_html("<p>a<b>b</b>c</p>")
        assert root.find("p").text_content() == "abc"

    def test_empty_document(self):
        root = parse_html("")
        assert root.find("head") is not None
        assert root.find("body") is not None


class TestElementApi:
    def test_get_set(self):
        e = Element("a", {"href": "x"})
        assert e.get("HREF") == "x"
        e.set("Href", "y")
        assert e.get("href") == "y"

    def test_find_depth_first(self):
        root = parse_html("<div><p>1</p></div><p>2</p>")
        assert root.find("p").text_content() == "1"

    def test_prepend(self):
        e = Element("div")
        e.append(Text("b"))
        e.prepend(Text("a"))
        assert [t.data for t in e.children] == ["a", "b"]
