"""Tests for repro.html.tokenizer."""

from __future__ import annotations

from repro.html.tokenizer import (
    CommentToken,
    EndTagToken,
    StartTagToken,
    TextToken,
    tokenize,
)


def toks(html: str):
    return list(tokenize(html))


class TestBasicTokens:
    def test_text_only(self):
        assert toks("hello") == [TextToken("hello")]

    def test_simple_element(self):
        out = toks("<p>x</p>")
        assert out == [
            StartTagToken("p", {}, False),
            TextToken("x"),
            EndTagToken("p"),
        ]

    def test_tag_names_lowercased(self):
        out = toks("<DIV></DIV>")
        assert out[0] == StartTagToken("div", {}, False)
        assert out[1] == EndTagToken("div")

    def test_comment(self):
        assert toks("<!-- hi -->") == [CommentToken(" hi ")]

    def test_doctype_as_comment(self):
        out = toks("<!DOCTYPE html><p></p>")
        assert isinstance(out[0], CommentToken)

    def test_empty_input(self):
        assert toks("") == []


class TestAttributes:
    def test_double_quoted(self):
        out = toks('<a href="x.html">')
        assert out[0].attrs == {"href": "x.html"}

    def test_single_quoted(self):
        out = toks("<a href='x.html'>")
        assert out[0].attrs == {"href": "x.html"}

    def test_bare_value(self):
        out = toks("<img width=1>")
        assert out[0].attrs == {"width": "1"}

    def test_valueless_attribute(self):
        out = toks("<input disabled>")
        assert out[0].attrs == {"disabled": ""}

    def test_attribute_names_lowercased(self):
        out = toks('<a HREF="x">')
        assert "href" in out[0].attrs

    def test_multiple_attributes(self):
        out = toks('<link rel="stylesheet" type="text/css" href="/a.css">')
        assert out[0].attrs == {
            "rel": "stylesheet",
            "type": "text/css",
            "href": "/a.css",
        }

    def test_first_duplicate_wins(self):
        out = toks('<a href="1" href="2">')
        assert out[0].attrs["href"] == "1"

    def test_self_closing(self):
        out = toks("<br/>")
        assert out[0].self_closing is True

    def test_event_handler_attribute(self):
        out = toks('<body onmousemove="return f();">')
        assert out[0].attrs["onmousemove"] == "return f();"


class TestRawText:
    def test_script_content_not_parsed(self):
        html = "<script>if (a < b) { x = '<p>'; }</script>"
        out = toks(html)
        assert out[0] == StartTagToken("script", {}, False)
        assert out[1] == TextToken("if (a < b) { x = '<p>'; }")
        assert out[2] == EndTagToken("script")

    def test_style_content_not_parsed(self):
        out = toks("<style>a < b</style>")
        assert out[1] == TextToken("a < b")

    def test_unclosed_script_consumes_rest(self):
        out = toks("<script>var x = 1;")
        assert out[-1] == TextToken("var x = 1;")

    def test_script_case_insensitive_close(self):
        out = toks("<script>x</SCRIPT>after")
        assert TextToken("after") in out


class TestMalformed:
    def test_stray_lt(self):
        out = toks("a < b")
        assert "".join(t.data for t in out if isinstance(t, TextToken)) == (
            "a < b"
        )

    def test_unclosed_tag_at_eof(self):
        out = toks("<a href='x'")
        assert out[0].attrs == {"href": "x"}

    def test_unclosed_comment(self):
        out = toks("<!-- never closed")
        assert isinstance(out[0], CommentToken)

    def test_stray_end_tag_slash(self):
        out = toks("</ notatag>")
        assert isinstance(out[0], TextToken)
