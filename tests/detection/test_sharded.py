"""Tests for repro.detection.sharded."""

from __future__ import annotations

import pytest

from repro.detection.online import OnlineClassifier
from repro.detection.service import DetectionService
from repro.detection.sharded import (
    ShardedDetectionService,
    merge_sessions,
    shard_index,
    shard_service,
)
from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url
from repro.instrument.keys import (
    BeaconKind,
    InstrumentationRegistry,
    RegisteredProbe,
)


def _probe(client_ip: str, key: str) -> RegisteredProbe:
    return RegisteredProbe(
        kind=BeaconKind.CSS_BEACON,
        client_ip=client_ip,
        host="site.test",
        path=f"/probe-{key}.css",
        page_path="/page.html",
        issued_at=0.0,
        key=key,
    )


def _request(
    client_ip: str,
    user_agent: str = "Mozilla/5.0",
    path: str = "/page.html",
    timestamp: float = 0.0,
) -> Request:
    return Request(
        method=Method.GET,
        url=Url.parse(f"http://site.test{path}"),
        client_ip=client_ip,
        headers=Headers([("User-Agent", user_agent)]),
        timestamp=timestamp,
    )


def _stream(n_clients: int = 24, requests_each: int = 12) -> list[Request]:
    """A deterministic round-robin request stream over many sessions."""
    requests = []
    for round_no in range(requests_each):
        for client in range(n_clients):
            requests.append(
                _request(
                    f"10.0.{client // 256}.{client % 256}",
                    user_agent=f"agent-{client % 3}",
                    path=f"/p{round_no}.html",
                    timestamp=round_no * 10.0 + client * 0.01,
                )
            )
    return requests


def _drive(service, requests) -> None:
    response = Response(status=200, headers=Headers(), body=b"ok")
    for request in requests:
        outcome = service.handle_request(request)
        service.note_response(outcome, response)


def _census(service) -> dict[tuple[str, str, float], int]:
    return {
        (s.key.client_ip, s.key.user_agent, s.started_at): s.request_count
        for s in service.tracker.analyzable()
    }


class TestShardIndex:
    def test_stable_and_in_range(self):
        for n in (1, 2, 3, 8, 64):
            index = shard_index("1.2.3.4", n)
            assert 0 <= index < n
            assert index == shard_index("1.2.3.4", n)

    def test_single_shard_short_circuits(self):
        assert shard_index("anything", 1) == 0

    def test_ip_only_routing_ignores_user_agent(self):
        # Routing is per client IP so a shard owns every piece of state
        # (registry / cache / limiter partitions) the IP can touch; the
        # user agent only distinguishes sessions *within* a shard.
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=8
        )
        assert sharded.shard_index_for(
            "9.9.9.9", "bot/1.0"
        ) == sharded.shard_index_for("9.9.9.9", "browser/2.0")

    def test_keys_spread_across_shards(self):
        indices = {shard_index(f"10.0.0.{i}", 8) for i in range(200)}
        assert len(indices) == 8


class TestShardedService:
    @pytest.mark.parametrize("n_shards", [1, 2, 8])
    def test_matches_unsharded_service(self, n_shards):
        requests = _stream()
        plain = DetectionService(InstrumentationRegistry())
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=n_shards
        )
        _drive(plain, requests)
        _drive(sharded, requests)
        plain.finalize()
        sharded.finalize()

        assert sharded.tracker.total_started == plain.tracker.total_started
        assert _census(sharded) == _census(plain)
        assert (
            sharded.session_sets().summary()
            == plain.session_sets().summary()
        )

    def test_requests_route_to_owning_shard(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=4
        )
        request = _request("9.9.9.9", "bot/1.0")
        sharded.handle_request(request)
        owner = sharded.shard_index_for("9.9.9.9", "bot/1.0")
        for index, shard in enumerate(sharded.shards):
            expected = 1 if index == owner else 0
            assert shard.tracker.live_count == expected
        assert sharded.tracker.live_count == 1
        assert sharded.tracker.get("9.9.9.9", "bot/1.0") is not None

    def test_session_ids_unique_across_shards(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=8
        )
        _drive(sharded, _stream())
        sharded.finalize()
        ids = [s.session_id for s in sharded.tracker.completed]
        assert len(ids) == len(set(ids))

    def test_handle_batch_preserves_input_order(self):
        requests = _stream(n_clients=16, requests_each=12)
        sequential = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=4
        )
        outcomes_seq = [sequential.handle_request(r) for r in requests]
        batched = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=4
        )
        outcomes_batch = batched.handle_batch(requests)

        assert len(outcomes_batch) == len(requests)
        for a, b, request in zip(outcomes_seq, outcomes_batch, requests):
            assert b.state.key.client_ip == request.client_ip
            assert a.request_index == b.request_index
            assert a.verdict.label == b.verdict.label

    def test_executor_path_equivalent(self):
        requests = _stream()
        plain = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=8
        )
        _drive(plain, requests)
        plain.finalize()
        with ShardedDetectionService(
            InstrumentationRegistry(), n_shards=8, max_workers=4
        ) as threaded:
            threaded.handle_batch(requests)
            threaded.finalize()
            assert _census(threaded) == _census(plain)
            assert (
                threaded.session_sets().summary()
                == plain.session_sets().summary()
            )

    def test_merged_reductions_are_deterministically_ordered(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=8
        )
        _drive(sharded, _stream())
        sessions = sharded.finalize()
        keys = [
            (s.started_at, s.key.client_ip, s.key.user_agent)
            for s in sessions
        ]
        assert keys == sorted(keys)
        latencies = sharded.detection_latencies()
        assert [l.session_id for l in latencies] == [
            s.session_id for s in sessions
        ]

    def test_note_captcha_routes_and_logs(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=4
        )
        request = _request("7.7.7.7", "human/1.0", timestamp=5.0)
        outcome = sharded.handle_request(request)
        event = sharded.note_captcha(outcome.state, True, timestamp=6.0)
        assert outcome.state.passed_captcha
        owner = sharded.shard_for("7.7.7.7", "human/1.0")
        assert event in owner.event_log
        assert event in sharded.event_log

    def test_event_log_merges_all_shards(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=4
        )
        _drive(sharded, _stream(n_clients=8, requests_each=2))
        merged = sharded.event_log
        assert len(merged) == sum(
            len(shard.event_log) for shard in sharded.shards
        )
        stamps = [e.timestamp for e in merged]
        assert stamps == sorted(stamps)

    def test_keep_event_log_fans_out(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=3
        )
        sharded.keep_event_log = False
        assert not any(s.keep_event_log for s in sharded.shards)
        _drive(sharded, _stream(n_clients=4, requests_each=2))
        assert sharded.event_log == []

    def test_expire_idle_sweeps_every_shard(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=4, idle_timeout=100.0
        )
        _drive(sharded, _stream(n_clients=12, requests_each=2))
        assert sharded.tracker.live_count == 12
        expired = sharded.tracker.expire_idle(now=1e6)
        assert len(expired) == 12
        assert sharded.tracker.live_count == 0

    def test_invalid_params(self):
        registry = InstrumentationRegistry()
        with pytest.raises(ValueError):
            ShardedDetectionService(registry, n_shards=0)
        with pytest.raises(ValueError):
            ShardedDetectionService(registry, n_shards=2, max_workers=0)


class TestShardService:
    def test_preserves_registry_and_config(self):
        registry = InstrumentationRegistry()
        plain = DetectionService(
            registry, idle_timeout=123.0, min_requests=5
        )
        registry.register(_probe("4.4.4.4", key="k-preserved"))
        resharded = shard_service(plain, 4)
        # The registry is re-partitioned into an IP-routed facade; the
        # registrations (and their per-IP order) must survive the move.
        assert [p.key for p in resharded.registry.iter_probes()] == [
            "k-preserved"
        ]
        assert resharded.registry.n_partitions == 4
        assert resharded.n_shards == 4
        assert resharded.tracker.idle_timeout == 123.0
        assert resharded.tracker.min_requests == 5
        assert isinstance(resharded.classifier, OnlineClassifier)

    def test_refuses_after_traffic(self):
        plain = DetectionService(InstrumentationRegistry())
        plain.handle_request(_request("1.1.1.1"))
        with pytest.raises(RuntimeError):
            shard_service(plain, 2)

    def test_resharding_a_sharded_service(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=2, min_requests=7
        )
        resharded = shard_service(sharded, 8)
        assert resharded.n_shards == 8
        assert resharded.tracker.min_requests == 7


class TestMergeSessions:
    def test_sorts_across_groups(self):
        sharded = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=8
        )
        _drive(sharded, _stream(n_clients=16, requests_each=2))
        sharded.tracker.finalize_all()
        groups = [
            shard.tracker.completed for shard in sharded.shards
        ]
        merged = merge_sessions(groups)
        assert len(merged) == sum(len(g) for g in groups)
        keys = [
            (s.started_at, s.key.client_ip, s.key.user_agent)
            for s in merged
        ]
        assert keys == sorted(keys)
