"""Tests for repro.detection.events and repro.detection.verdict."""

from __future__ import annotations

from repro.detection.events import DetectionEvent, EventKind
from repro.detection.verdict import Label, Verdict


class TestEventKinds:
    def test_human_evidence(self):
        assert EventKind.MOUSE_EVENT_VALID.is_human_evidence
        assert EventKind.CAPTCHA_PASSED.is_human_evidence
        assert not EventKind.CSS_BEACON_FETCH.is_human_evidence

    def test_robot_evidence(self):
        assert EventKind.MOUSE_EVENT_WRONG_KEY.is_robot_evidence
        assert EventKind.HIDDEN_LINK_FOLLOWED.is_robot_evidence
        assert EventKind.UA_MISMATCH.is_robot_evidence
        assert not EventKind.JS_EXECUTED.is_robot_evidence

    def test_no_kind_is_both(self):
        for kind in EventKind:
            assert not (kind.is_human_evidence and kind.is_robot_evidence)

    def test_event_str(self):
        event = DetectionEvent(
            kind=EventKind.CSS_BEACON_FETCH,
            session_id="sess-000001",
            request_index=7,
            timestamp=12.5,
            detail="/123.css",
        )
        text = str(event)
        assert "sess-000001" in text
        assert "req#7" in text
        assert "css_beacon_fetch" in text
        assert "/123.css" in text

    def test_event_str_without_detail(self):
        event = DetectionEvent(
            kind=EventKind.SESSION_EXPIRED,
            session_id="s",
            request_index=1,
            timestamp=0.0,
        )
        assert "(" not in str(event).split("session_expired")[-1]


class TestVerdict:
    def test_str_definitive(self):
        verdict = Verdict(Label.HUMAN, "mouse", definitive=True)
        assert "human" in str(verdict)
        assert "definitive" in str(verdict)

    def test_str_tentative(self):
        verdict = Verdict(Label.ROBOT, "no evidence")
        assert "tentative" in str(verdict)

    def test_labels_distinct(self):
        assert Label.HUMAN is not Label.ROBOT
        assert {label.value for label in Label} == {
            "human", "robot", "undecided"
        }
