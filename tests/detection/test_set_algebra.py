"""Tests for repro.detection.set_algebra."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.detection.session import SessionKey, SessionState
from repro.detection.set_algebra import SessionSets


def _session(css=False, js=False, mouse=False, captcha=False,
             hidden=False, mismatch=False, n=0):
    state = SessionState(
        session_id=f"s{n}", key=SessionKey("1.1.1.1", "UA"), started_at=0.0
    )
    if css:
        state.css_beacon_at = 1
    if js:
        state.js_executed_at = 2
    if mouse:
        state.mouse_event_at = 3
    if captcha:
        state.captcha_passed_at = 4
    if hidden:
        state.hidden_link_at = 5
    if mismatch:
        state.ua_mismatch_at = 6
    return state


class TestFormula:
    def test_css_only_is_human(self):
        sets = SessionSets.from_sessions([_session(css=True)])
        assert sets.summary().human_upper_count == 1

    def test_mouse_only_is_human(self):
        sets = SessionSets.from_sessions([_session(mouse=True)])
        assert sets.summary().human_upper_count == 1

    def test_js_without_mouse_excluded(self):
        sets = SessionSets.from_sessions([_session(css=True, js=True)])
        assert sets.summary().human_upper_count == 0

    def test_js_with_mouse_included(self):
        sets = SessionSets.from_sessions(
            [_session(css=True, js=True, mouse=True)]
        )
        assert sets.summary().human_upper_count == 1

    def test_nothing_is_robot(self):
        sets = SessionSets.from_sessions([_session()])
        assert sets.summary().human_upper_count == 0


class TestPaperNumbers:
    def test_paper_table1_arithmetic(self):
        """Feed the exact Table 1 set sizes and check §3.1's numbers."""
        from repro.detection.set_algebra import SetAlgebraSummary

        summary = SetAlgebraSummary(
            total_sessions=929_922,
            css_downloads=268_952,
            js_executions=251_706,
            mouse_movements=207_368,
            captcha_passes=84_924,
            hidden_link_follows=9_323,
            ua_mismatches=6_288,
            human_upper_count=225_220,
        )
        assert abs(summary.lower_bound - 0.223) < 0.001
        assert abs(summary.upper_bound - 0.242) < 0.001
        assert abs(summary.bound_gap - 0.019) < 0.001
        assert abs(summary.max_false_positive_rate - 0.024) < 0.002

    def test_fraction_lookup(self):
        sets = SessionSets.from_sessions(
            [_session(css=True), _session(), _session(), _session()]
        )
        assert sets.summary().fraction("css_downloads") == 0.25


class TestIncrementalConsistency:
    def test_add_matches_from_sessions(self):
        sessions = [
            _session(css=True, js=True, n=1),
            _session(mouse=True, js=True, n=2),
            _session(hidden=True, n=3),
            _session(captcha=True, css=True, n=4),
        ]
        incremental = SessionSets()
        for s in sessions:
            incremental.add(s)
        batch = SessionSets.from_sessions(sessions)
        assert incremental.summary() == batch.summary()


@settings(max_examples=60, deadline=None)
@given(
    flags=st.lists(
        st.tuples(st.booleans(), st.booleans(), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_bounds_ordered(flags):
    """lower bound <= upper bound, and max FPR in [0, 1], always."""
    sessions = [
        _session(css=css, js=js, mouse=mouse, n=i)
        for i, (css, js, mouse) in enumerate(flags)
    ]
    summary = SessionSets.from_sessions(sessions).summary()
    assert summary.lower_bound <= summary.upper_bound + 1e-12
    assert 0.0 <= summary.max_false_positive_rate <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    flags=st.lists(
        st.tuples(st.booleans(), st.booleans(), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_mouse_sessions_always_in_upper(flags):
    """Every S_MM member is in S_H: the formula never excludes proof."""
    for i, (css, js, _) in enumerate(flags):
        state = _session(css=css, js=js, mouse=True, n=i)
        assert state.is_human_by_set_algebra
