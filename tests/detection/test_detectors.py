"""Tests for the three probe detectors."""

from __future__ import annotations

from repro.detection.browser_test import BrowserTestDetector
from repro.detection.events import EventKind
from repro.detection.hidden_trap import HiddenLinkDetector
from repro.detection.human_activity import HumanActivityDetector
from repro.detection.session import SessionKey, SessionState
from repro.instrument.keys import BeaconHit, BeaconKind, RegisteredProbe
from repro.instrument.ua_probe import sanitize_user_agent


def _state(ua="Mozilla/4.0 (compatible; MSIE 6.0)"):
    return SessionState(
        session_id="s1", key=SessionKey("1.1.1.1", ua), started_at=0.0
    )


def _hit(kind, is_real_key=True, echoed=None, path="/p"):
    probe = RegisteredProbe(
        kind=kind,
        client_ip="1.1.1.1",
        host="h.com",
        path=path,
        page_path="/index.html",
        issued_at=0.0,
        key="deadbeef00",
        is_real_key=is_real_key,
    )
    return BeaconHit(probe=probe, echoed_user_agent=echoed)


class TestHumanActivity:
    def test_valid_mouse_event(self):
        state = _state()
        events = HumanActivityDetector().observe_hit(
            state, _hit(BeaconKind.MOUSE_IMAGE), 7, 1.0
        )
        assert [e.kind for e in events] == [EventKind.MOUSE_EVENT_VALID]
        assert state.mouse_event_at == 7

    def test_duplicate_mouse_event_not_reemitted(self):
        state = _state()
        detector = HumanActivityDetector()
        detector.observe_hit(state, _hit(BeaconKind.MOUSE_IMAGE), 7, 1.0)
        events = detector.observe_hit(
            state, _hit(BeaconKind.MOUSE_IMAGE), 9, 2.0
        )
        assert events == []
        assert state.mouse_event_at == 7

    def test_wrong_key_is_robot_evidence(self):
        state = _state()
        events = HumanActivityDetector().observe_hit(
            state, _hit(BeaconKind.MOUSE_IMAGE, is_real_key=False), 4, 1.0
        )
        assert [e.kind for e in events] == [EventKind.MOUSE_EVENT_WRONG_KEY]
        assert state.wrong_key_fetches == 1
        assert state.mouse_event_at is None

    def test_beacon_js_fetch_recorded(self):
        state = _state()
        events = HumanActivityDetector().observe_hit(
            state, _hit(BeaconKind.BEACON_JS), 3, 1.0
        )
        assert [e.kind for e in events] == [EventKind.BEACON_JS_FETCH]
        assert state.beacon_js_at == 3

    def test_ignores_other_kinds(self):
        state = _state()
        events = HumanActivityDetector().observe_hit(
            state, _hit(BeaconKind.CSS_BEACON), 3, 1.0
        )
        assert events == []


class TestBrowserTest:
    def test_css_fetch(self):
        state = _state()
        events = BrowserTestDetector().observe_hit(
            state, _hit(BeaconKind.CSS_BEACON), 2, 1.0
        )
        assert [e.kind for e in events] == [EventKind.CSS_BEACON_FETCH]
        assert state.css_beacon_at == 2

    def test_ua_probe_marks_js_executed(self):
        state = _state()
        echoed = sanitize_user_agent(state.key.user_agent)
        events = BrowserTestDetector().observe_hit(
            state, _hit(BeaconKind.UA_PROBE, echoed=echoed), 5, 1.0
        )
        assert [e.kind for e in events] == [EventKind.JS_EXECUTED]
        assert state.js_executed_at == 5
        assert state.ua_mismatch_at is None

    def test_ua_mismatch_detected(self):
        state = _state(ua="Wget/1.10.2")
        events = BrowserTestDetector().observe_hit(
            state,
            _hit(BeaconKind.UA_PROBE, echoed="mozilla_4.0(msie6.0)"),
            5,
            1.0,
        )
        kinds = [e.kind for e in events]
        assert EventKind.JS_EXECUTED in kinds
        assert EventKind.UA_MISMATCH in kinds

    def test_empty_echo_is_not_mismatch(self):
        state = _state()
        events = BrowserTestDetector().observe_hit(
            state, _hit(BeaconKind.UA_PROBE, echoed=""), 5, 1.0
        )
        assert [e.kind for e in events] == [EventKind.JS_EXECUTED]


class TestHiddenTrap:
    def test_trap_page_fetch(self):
        state = _state()
        events = HiddenLinkDetector().observe_hit(
            state, _hit(BeaconKind.TRAP_PAGE), 6, 1.0
        )
        assert [e.kind for e in events] == [EventKind.HIDDEN_LINK_FOLLOWED]
        assert state.hidden_link_at == 6

    def test_trap_image_is_neutral(self):
        state = _state()
        events = HiddenLinkDetector().observe_hit(
            state, _hit(BeaconKind.TRAP_IMAGE), 6, 1.0
        )
        assert events == []
        assert state.hidden_link_at is None

    def test_only_first_emission(self):
        state = _state()
        detector = HiddenLinkDetector()
        detector.observe_hit(state, _hit(BeaconKind.TRAP_PAGE), 6, 1.0)
        assert detector.observe_hit(
            state, _hit(BeaconKind.TRAP_PAGE), 8, 2.0
        ) == []
