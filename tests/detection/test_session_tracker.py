"""Tests for repro.detection.session and repro.detection.tracker."""

from __future__ import annotations

import pytest

from repro.detection.session import SessionKey, SessionState
from repro.detection.tracker import SessionTracker
from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url
from repro.util.timeutil import HOUR


def _request(ip="1.1.1.1", ua="UA", path="/a.html", t=0.0, method=Method.GET):
    return Request(
        method=method,
        url=Url.parse(f"http://h.com{path}"),
        client_ip=ip,
        headers=Headers([("User-Agent", ua)]),
        timestamp=t,
    )


def _state(**kw) -> SessionState:
    return SessionState(
        session_id=kw.pop("session_id", "s1"),
        key=SessionKey("1.1.1.1", "UA"),
        started_at=0.0,
        **kw,
    )


class TestSessionState:
    def test_note_request_counts(self):
        state = _state()
        assert state.note_request(_request(t=1.0)) == 1
        assert state.note_request(_request(t=2.0, method=Method.HEAD)) == 2
        assert state.get_requests == 1
        assert state.head_requests == 1
        assert state.last_request_at == 2.0

    def test_cgi_counted(self):
        state = _state()
        state.note_request(_request(path="/cgi-bin/s.cgi?q=1"))
        assert state.cgi_requests == 1

    def test_note_response_status_classes(self):
        state = _state()
        for status in (200, 302, 404, 503):
            state.note_response(Response(status=status, body=b"xy"))
        assert state.status_2xx == 1
        assert state.status_3xx == 1
        assert state.status_4xx == 1
        assert state.status_5xx == 1
        assert state.bytes_served == 8

    def test_beacon_bytes_tracked(self):
        state = _state()
        state.note_response(Response(status=200, body=b"abc"), from_beacon=True)
        assert state.beacon_bytes_served == 3

    def test_mark_first_only_once(self):
        state = _state()
        assert state.mark_first("css_beacon_at", 5) is True
        assert state.mark_first("css_beacon_at", 9) is False
        assert state.css_beacon_at == 5

    def test_set_algebra_membership(self):
        human = _state()
        human.css_beacon_at = 3
        assert human.is_human_by_set_algebra

        js_no_mouse = _state()
        js_no_mouse.css_beacon_at = 3
        js_no_mouse.js_executed_at = 4
        assert not js_no_mouse.is_human_by_set_algebra

        mouse = _state()
        mouse.js_executed_at = 4
        mouse.mouse_event_at = 9
        assert mouse.is_human_by_set_algebra

        nothing = _state()
        assert not nothing.is_human_by_set_algebra


class TestTracker:
    def test_groups_by_ip_and_ua(self):
        tracker = SessionTracker()
        a, started_a = tracker.observe(_request(ip="1.1.1.1", ua="X"))
        b, started_b = tracker.observe(_request(ip="1.1.1.1", ua="Y"))
        c, __ = tracker.observe(_request(ip="1.1.1.1", ua="X"))
        assert started_a and started_b
        assert a is c
        assert a is not b
        assert tracker.live_count == 2

    def test_idle_rotation(self):
        tracker = SessionTracker(idle_timeout=HOUR)
        first, _ = tracker.observe(_request(t=0.0))
        first.note_request(_request(t=0.0))
        second, started = tracker.observe(_request(t=2 * HOUR))
        assert started
        assert second is not first
        assert first in tracker.completed

    def test_no_rotation_within_timeout(self):
        tracker = SessionTracker(idle_timeout=HOUR)
        first, _ = tracker.observe(_request(t=0.0))
        first.note_request(_request(t=0.0))
        again, started = tracker.observe(_request(t=HOUR - 1))
        assert not started
        assert again is first

    def test_expire_idle(self):
        tracker = SessionTracker(idle_timeout=HOUR)
        state, _ = tracker.observe(_request(t=0.0))
        state.note_request(_request(t=0.0))
        expired = tracker.expire_idle(3 * HOUR)
        assert expired == [state]
        assert tracker.live_count == 0

    def test_finalize_all(self):
        tracker = SessionTracker()
        tracker.observe(_request(ip="1.1.1.1"))
        tracker.observe(_request(ip="2.2.2.2"))
        done = tracker.finalize_all()
        assert len(done) == 2
        assert tracker.live_count == 0
        assert len(tracker.completed) == 2

    def test_analyzable_filters_noise(self):
        tracker = SessionTracker(min_requests=10)
        state, _ = tracker.observe(_request())
        for i in range(10):
            state.note_request(_request(t=float(i)))
        short, _ = tracker.observe(_request(ip="9.9.9.9"))
        short.note_request(_request(ip="9.9.9.9"))
        tracker.finalize_all()
        analyzable = tracker.analyzable()
        assert short not in analyzable
        assert state not in analyzable  # exactly 10 is not > 10
        state.request_count = 11
        assert state in tracker.analyzable()

    def test_sink_called_on_retire(self):
        retired = []
        tracker = SessionTracker(sink=retired.append)
        tracker.observe(_request())
        tracker.finalize_all()
        assert len(retired) == 1

    def test_total_started(self):
        tracker = SessionTracker()
        tracker.observe(_request(ip="1.1.1.1"))
        tracker.observe(_request(ip="2.2.2.2"))
        tracker.observe(_request(ip="1.1.1.1"))
        assert tracker.total_started == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SessionTracker(idle_timeout=0)
        with pytest.raises(ValueError):
            SessionTracker(min_requests=-1)
