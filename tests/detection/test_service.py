"""Tests for repro.detection.service: the per-request pipeline."""

from __future__ import annotations

from repro.detection.events import EventKind
from repro.detection.service import DetectionService
from repro.detection.verdict import Label
from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url
from repro.instrument.keys import InstrumentationRegistry
from repro.instrument.rewriter import InstrumentConfig, PageInstrumenter
from repro.util.rng import RngStream


def _request(path, ip="1.2.3.4", ua="Mozilla/4.0 (compatible; MSIE 6.0)", t=0.0):
    return Request(
        method=Method.GET,
        url=Url.parse(f"http://h.com{path}"),
        client_ip=ip,
        headers=Headers([("User-Agent", ua)]),
        timestamp=t,
    )


def _service_with_instrumented_page():
    registry = InstrumentationRegistry()
    service = DetectionService(registry)
    instrumenter = PageInstrumenter(
        registry, RngStream(12, "t"), InstrumentConfig()
    )
    page = instrumenter.instrument(
        "<html><head></head><body><p>x</p></body></html>",
        Url.parse("http://h.com/index.html"),
        "1.2.3.4",
        0.0,
    )
    return service, page


class TestPipeline:
    def test_session_started_event(self):
        service, _ = _service_with_instrumented_page()
        outcome = service.handle_request(_request("/index.html"))
        assert outcome.session_started
        assert outcome.events[0].kind is EventKind.SESSION_STARTED
        assert outcome.request_index == 1

    def test_css_beacon_fetch_produces_event_and_flag(self):
        service, page = _service_with_instrumented_page()
        css = next(p for p in page.probes if p.kind.value == "css_beacon")
        service.handle_request(_request("/index.html"))
        outcome = service.handle_request(_request(css.path, t=1.0))
        assert any(
            e.kind is EventKind.CSS_BEACON_FETCH for e in outcome.events
        )
        assert outcome.state.css_beacon_at == 2

    def test_valid_mouse_fetch_yields_human_verdict(self):
        service, page = _service_with_instrumented_page()
        real = next(
            p for p in page.probes
            if p.kind.value == "mouse_image" and p.is_real_key
        )
        service.handle_request(_request("/index.html"))
        outcome = service.handle_request(_request(real.path, t=1.0))
        assert outcome.verdict.label is Label.HUMAN
        assert outcome.verdict.definitive

    def test_decoy_fetch_yields_blocked_robot(self):
        service, page = _service_with_instrumented_page()
        decoy = next(
            p for p in page.probes
            if p.kind.value == "mouse_image" and not p.is_real_key
        )
        service.handle_request(_request("/index.html"))
        outcome = service.handle_request(_request(decoy.path, t=1.0))
        assert outcome.verdict.label is Label.ROBOT
        assert outcome.verdict.definitive
        # The wrong-key threshold blocks immediately.
        assert outcome.blocked

    def test_note_response_accounts_bytes(self):
        service, _ = _service_with_instrumented_page()
        outcome = service.handle_request(_request("/index.html"))
        service.note_response(
            outcome, Response(status=200, body=b"abcd")
        )
        assert outcome.state.bytes_served == 4
        assert outcome.state.status_2xx == 1

    def test_note_captcha(self):
        service, _ = _service_with_instrumented_page()
        outcome = service.handle_request(_request("/index.html"))
        event = service.note_captcha(outcome.state, True, 2.0)
        assert event.kind is EventKind.CAPTCHA_PASSED
        assert outcome.state.passed_captcha

    def test_finalize_and_reductions(self):
        service, page = _service_with_instrumented_page()
        css = next(p for p in page.probes if p.kind.value == "css_beacon")
        for i in range(12):
            service.handle_request(_request("/index.html", t=float(i)))
        service.handle_request(_request(css.path, t=20.0))
        finished = service.finalize()
        assert len(finished) == 1
        sets = service.session_sets()
        assert sets.summary().css_downloads == 1
        latencies = service.detection_latencies()
        assert latencies[0].css_at == 13

    def test_event_log_collects(self):
        service, _ = _service_with_instrumented_page()
        service.handle_request(_request("/index.html"))
        assert any(
            e.kind is EventKind.SESSION_STARTED for e in service.event_log
        )

    def test_separate_sessions_per_ua(self):
        service, _ = _service_with_instrumented_page()
        a = service.handle_request(_request("/index.html", ua="A"))
        b = service.handle_request(_request("/index.html", ua="B"))
        assert a.state is not b.state
