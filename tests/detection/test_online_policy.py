"""Tests for repro.detection.online and repro.detection.policy."""

from __future__ import annotations

import pytest

from repro.detection.online import DetectionLatency, OnlineClassifier, OnlineConfig
from repro.detection.policy import PolicyAction, PolicyConfig, RobotPolicy
from repro.detection.session import SessionKey, SessionState
from repro.detection.verdict import Label, Verdict
from repro.http.headers import Headers
from repro.http.message import Method, Request
from repro.http.uri import Url


def _state(**fields) -> SessionState:
    state = SessionState(
        session_id="s1", key=SessionKey("1.1.1.1", "UA"), started_at=0.0
    )
    for name, value in fields.items():
        setattr(state, name, value)
    return state


def _request(path="/a.html", t=0.0, method=Method.GET):
    return Request(
        method=method,
        url=Url.parse(f"http://h.com{path}"),
        client_ip="1.1.1.1",
        headers=Headers([("User-Agent", "UA")]),
        timestamp=t,
    )


class TestOnlineDecisionOrder:
    def test_wrong_key_beats_everything(self):
        state = _state(
            wrong_key_fetches=1, mouse_event_at=3, request_count=5
        )
        verdict = OnlineClassifier().classify(state)
        assert verdict.label is Label.ROBOT
        assert verdict.definitive

    def test_hidden_link_is_robot(self):
        verdict = OnlineClassifier().classify(
            _state(hidden_link_at=2, request_count=3)
        )
        assert verdict.label is Label.ROBOT
        assert verdict.definitive

    def test_ua_mismatch_is_robot(self):
        verdict = OnlineClassifier().classify(
            _state(ua_mismatch_at=2, request_count=3)
        )
        assert verdict.label is Label.ROBOT

    def test_mouse_event_is_human(self):
        verdict = OnlineClassifier().classify(
            _state(mouse_event_at=4, request_count=6)
        )
        assert verdict.label is Label.HUMAN
        assert verdict.definitive
        assert verdict.at_request == 4

    def test_captcha_pass_is_human(self):
        verdict = OnlineClassifier().classify(
            _state(captcha_passed_at=8, request_count=9)
        )
        assert verdict.label is Label.HUMAN

    def test_js_no_mouse_needs_grace(self):
        config = OnlineConfig(js_no_mouse_grace=10)
        classifier = OnlineClassifier(config)
        early = _state(js_executed_at=5, css_beacon_at=2, request_count=8)
        assert classifier.classify(early).label is Label.HUMAN  # CSS wins
        late = _state(js_executed_at=5, css_beacon_at=2, request_count=20)
        verdict = classifier.classify(late)
        assert verdict.label is Label.ROBOT
        assert not verdict.definitive

    def test_css_only_is_tentative_human(self):
        verdict = OnlineClassifier().classify(
            _state(css_beacon_at=3, request_count=12)
        )
        assert verdict.label is Label.HUMAN
        assert not verdict.definitive

    def test_nothing_after_min_requests_is_robot(self):
        verdict = OnlineClassifier().classify(_state(request_count=15))
        assert verdict.label is Label.ROBOT

    def test_undecided_early(self):
        verdict = OnlineClassifier().classify(_state(request_count=3))
        assert verdict.label is Label.UNDECIDED

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            OnlineConfig(min_requests=0)


class TestFinalClassification:
    def test_final_follows_set_algebra(self):
        classifier = OnlineClassifier()
        human = _state(css_beacon_at=2, request_count=20)
        assert classifier.classify_final(human).label is Label.HUMAN
        js_bot = _state(css_beacon_at=2, js_executed_at=3, request_count=20)
        assert classifier.classify_final(js_bot).label is Label.ROBOT

    def test_final_hard_evidence_first(self):
        state = _state(css_beacon_at=2, hidden_link_at=5, request_count=20)
        verdict = OnlineClassifier().classify_final(state)
        assert verdict.label is Label.ROBOT
        assert verdict.definitive


class TestLatency:
    def test_from_state(self):
        state = _state(css_beacon_at=4, beacon_js_at=6, mouse_event_at=11)
        latency = DetectionLatency.from_state(state)
        assert latency.css_at == 4
        assert latency.beacon_js_at == 6
        assert latency.mouse_at == 11


class TestPolicy:
    def _robot_verdict(self):
        return Verdict(Label.ROBOT, "test", at_request=1)

    def test_humans_always_allowed(self):
        policy = RobotPolicy()
        decision = policy.evaluate(
            _state(), Verdict(Label.HUMAN, "x"), _request()
        )
        assert decision.action is PolicyAction.ALLOW

    def test_undecided_allowed_by_default(self):
        policy = RobotPolicy()
        decision = policy.evaluate(
            _state(), Verdict(Label.UNDECIDED, "x"), _request()
        )
        assert decision.action is PolicyAction.ALLOW

    def test_robot_watched_until_threshold(self):
        policy = RobotPolicy(PolicyConfig(get_rate_limit=1000))
        decision = policy.evaluate(
            _state(), self._robot_verdict(), _request()
        )
        assert decision.action is PolicyAction.WATCH

    def test_get_rate_trips_block(self):
        policy = RobotPolicy(PolicyConfig(get_rate_limit=10))
        state = _state()
        decision = None
        for i in range(30):
            decision = policy.evaluate(
                state, self._robot_verdict(), _request(t=i * 0.1)
            )
        assert decision.action is PolicyAction.BLOCK
        assert "GET request rate" in decision.reason
        assert policy.blocked_sessions == 1

    def test_cgi_rate_trips_block(self):
        policy = RobotPolicy(PolicyConfig(cgi_rate_limit=5))
        state = _state()
        decision = None
        for i in range(20):
            decision = policy.evaluate(
                state,
                self._robot_verdict(),
                _request(path=f"/cgi-bin/s.cgi?q={i}", t=i * 0.2),
            )
        assert decision.action is PolicyAction.BLOCK
        assert "CGI" in decision.reason

    def test_4xx_trips_block(self):
        policy = RobotPolicy(PolicyConfig(error_4xx_limit=5))
        state = _state(status_4xx=6)
        decision = policy.evaluate(state, self._robot_verdict(), _request())
        assert decision.action is PolicyAction.BLOCK

    def test_wrong_key_trips_immediately(self):
        policy = RobotPolicy()
        state = _state(wrong_key_fetches=1)
        decision = policy.evaluate(state, self._robot_verdict(), _request())
        assert decision.action is PolicyAction.BLOCK

    def test_blocked_stays_blocked(self):
        policy = RobotPolicy(PolicyConfig(error_4xx_limit=1))
        state = _state(status_4xx=2)
        policy.evaluate(state, self._robot_verdict(), _request())
        decision = policy.evaluate(state, self._robot_verdict(), _request(t=9))
        assert decision.action is PolicyAction.BLOCK
        assert policy.is_blocked("s1")

    def test_rates_decay_over_time(self):
        policy = RobotPolicy(PolicyConfig(get_rate_limit=10))
        state = _state()
        # Slow requests: one per minute never accumulates to the limit.
        for i in range(30):
            decision = policy.evaluate(
                state, self._robot_verdict(), _request(t=i * 60.0)
            )
        assert decision.action is PolicyAction.WATCH

    def test_human_verdict_clears_watch(self):
        policy = RobotPolicy()
        state = _state()
        policy.evaluate(state, self._robot_verdict(), _request())
        policy.evaluate(state, Verdict(Label.HUMAN, "x"), _request(t=1))
        assert not policy.is_blocked("s1")

    def test_forget(self):
        policy = RobotPolicy(PolicyConfig(error_4xx_limit=1))
        state = _state(status_4xx=5)
        policy.evaluate(state, self._robot_verdict(), _request())
        policy.forget("s1")
        assert not policy.is_blocked("s1")

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PolicyConfig(cgi_rate_limit=0)
        with pytest.raises(ValueError):
            PolicyConfig(error_4xx_limit=0)
