"""Tests for the CSS beacon, hidden link and UA probe primitives."""

from __future__ import annotations

from repro.html.links import extract_references
from repro.html.serializer import serialize
from repro.instrument.css_beacon import make_css_beacon
from repro.instrument.hidden_link import TRAP_IMAGE_NAME, make_hidden_link
from repro.instrument.ua_probe import (
    interpret_ua_probe,
    make_ua_probe_script,
    sanitize_user_agent,
)


class TestCssBeacon:
    def test_path_shape(self, rng):
        beacon = make_css_beacon(rng)
        assert beacon.path.endswith(".css")
        assert beacon.path[1:-4].isdigit()
        assert len(beacon.path[1:-4]) == 10

    def test_link_element(self, rng):
        beacon = make_css_beacon(rng)
        element = beacon.link_element("h.com")
        html = serialize(element)
        refs = extract_references(html)
        assert refs.stylesheets == [f"http://h.com{beacon.path}"]

    def test_distinct_per_page(self, rng):
        paths = {make_css_beacon(rng).path for _ in range(50)}
        assert len(paths) == 50


class TestHiddenLink:
    def test_paths(self, rng):
        trap = make_hidden_link(rng)
        assert trap.page_path.startswith("/hidden_")
        assert trap.image_path == f"/{TRAP_IMAGE_NAME}"

    def test_anchor_is_invisible(self, rng):
        trap = make_hidden_link(rng)
        html = serialize(trap.anchor_element("h.com"))
        refs = extract_references(html)
        assert refs.hidden_links == [f"http://h.com{trap.page_path}"]
        assert refs.visible_links == []

    def test_trap_image_is_an_embedded_object(self, rng):
        # Rendering browsers fetch the transparent image like any <img>.
        trap = make_hidden_link(rng)
        html = serialize(trap.anchor_element("h.com"))
        refs = extract_references(html)
        assert f"http://h.com{trap.image_path}" in refs.images


class TestSanitizeUserAgent:
    def test_paper_transform(self):
        # Lowercase, spaces removed — the paper's getuseragnt().
        assert sanitize_user_agent("Mozilla Compatible") == "mozillacompatible"

    def test_slashes_mapped(self):
        out = sanitize_user_agent("Firefox/1.5 (X11; Linux)")
        assert "/" not in out
        assert out == "firefox_1.5(x11;linux)"

    def test_idempotent(self):
        once = sanitize_user_agent("Mozilla/4.0 (compatible; MSIE 6.0)")
        assert sanitize_user_agent(once) == once


class TestUaProbe:
    def test_interpret_roundtrip(self, rng):
        probe = make_ua_probe_script(rng)
        source = probe.script_source("h.com")
        template = interpret_ua_probe(source)
        assert template is not None
        url = template.fetch_url("Mozilla/4.0 (compatible; MSIE 6.0)")
        assert url.startswith(f"http://h.com{probe.prefix_path}")
        assert url.endswith(".css")
        assert sanitize_user_agent("Mozilla/4.0 (compatible; MSIE 6.0)") in url

    def test_interpret_rejects_other_scripts(self):
        assert interpret_ua_probe("var a = 1;") is None
        assert interpret_ua_probe("") is None

    def test_probe_script_references_navigator(self, rng):
        source = make_ua_probe_script(rng).script_source("h.com")
        assert "navigator.userAgent" in source
        assert "document.write" in source

    def test_distinct_prefixes(self, rng):
        prefixes = {make_ua_probe_script(rng).prefix_path for _ in range(30)}
        assert len(prefixes) == 30
