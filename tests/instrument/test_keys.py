"""Tests for repro.instrument.keys (the per-IP probe registry)."""

from __future__ import annotations

import pytest

from repro.http.headers import Headers
from repro.http.message import Method, Request
from repro.http.uri import Url
from repro.instrument.keys import (
    BeaconKind,
    InstrumentationRegistry,
    RegisteredProbe,
)


def _probe(path="/k.jpg", ip="1.2.3.4", kind=BeaconKind.MOUSE_IMAGE, **kw):
    return RegisteredProbe(
        kind=kind,
        client_ip=ip,
        host="h.com",
        path=path,
        page_path="/index.html",
        issued_at=kw.pop("issued_at", 0.0),
        key=kw.pop("key", "abc"),
        is_real_key=kw.pop("is_real_key", True),
        payload=kw.pop("payload", b""),
    )


def _request(path, ip="1.2.3.4", t=1.0, host="h.com"):
    return Request(
        method=Method.GET,
        url=Url.parse(f"http://{host}{path}"),
        client_ip=ip,
        headers=Headers(),
        timestamp=t,
    )


class TestMatch:
    def test_exact_match(self, registry):
        registry.register(_probe())
        hit = registry.match(_request("/k.jpg"))
        assert hit is not None
        assert hit.probe.kind is BeaconKind.MOUSE_IMAGE

    def test_wrong_ip_no_match(self, registry):
        registry.register(_probe())
        assert registry.match(_request("/k.jpg", ip="9.9.9.9")) is None

    def test_wrong_path_no_match(self, registry):
        registry.register(_probe())
        assert registry.match(_request("/other.jpg")) is None

    def test_wrong_host_no_match(self, registry):
        registry.register(_probe())
        assert registry.match(_request("/k.jpg", host="evil.com")) is None

    def test_ua_probe_prefix_match(self, registry):
        registry.register(
            _probe(path="/ua_12345/", kind=BeaconKind.UA_PROBE, key=None)
        )
        hit = registry.match(_request("/ua_12345/mozilla_4.0.css"))
        assert hit is not None
        assert hit.echoed_user_agent == "mozilla_4.0"

    def test_ua_probe_newest_prefix_wins(self, registry):
        registry.register(
            _probe(path="/ua_1/", kind=BeaconKind.UA_PROBE, key=None)
        )
        registry.register(
            _probe(path="/ua_2/", kind=BeaconKind.UA_PROBE, key=None)
        )
        hit = registry.match(_request("/ua_2/agent.css"))
        assert hit.probe.path == "/ua_2/"

    def test_len_counts_probes(self, registry):
        registry.register(_probe(path="/a.jpg"))
        registry.register(_probe(path="/b.jpg"))
        assert len(registry) == 2


class TestExpiry:
    def test_ttl_blocks_match(self):
        registry = InstrumentationRegistry(ttl=10.0)
        registry.register(_probe(issued_at=0.0))
        assert registry.match(_request("/k.jpg", t=5.0)) is not None
        assert registry.match(_request("/k.jpg", t=20.0)) is None

    def test_expire_before_removes(self):
        registry = InstrumentationRegistry(ttl=10.0)
        registry.register(_probe(path="/a.jpg", issued_at=0.0))
        registry.register(_probe(path="/b.jpg", issued_at=100.0))
        removed = registry.expire_before(50.0)
        assert removed == 1
        assert len(registry) == 1

    def test_expired_ua_prefix_gone(self):
        registry = InstrumentationRegistry(ttl=10.0)
        registry.register(
            _probe(path="/ua_1/", kind=BeaconKind.UA_PROBE, issued_at=0.0)
        )
        registry.expire_before(100.0)
        assert registry.match(_request("/ua_1/x.css", t=100.0)) is None


class TestBounds:
    def test_per_ip_cap_evicts_oldest(self):
        registry = InstrumentationRegistry(per_ip_cap=8)
        for i in range(12):
            registry.register(_probe(path=f"/{i}.jpg", issued_at=float(i)))
        assert len(registry) == 8
        assert registry.match(_request("/0.jpg")) is None
        assert registry.match(_request("/11.jpg")) is not None

    def test_caps_are_per_ip(self):
        registry = InstrumentationRegistry(per_ip_cap=8)
        for i in range(8):
            registry.register(_probe(path=f"/{i}.jpg", ip="1.1.1.1"))
            registry.register(_probe(path=f"/{i}.jpg", ip="2.2.2.2"))
        assert len(registry) == 16

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InstrumentationRegistry(ttl=0.0)
        with pytest.raises(ValueError):
            InstrumentationRegistry(per_ip_cap=2)

    def test_outstanding_lists_probes(self, registry):
        registry.register(_probe(path="/a.jpg"))
        registry.register(_probe(path="/b.jpg"))
        paths = [p.path for p in registry.outstanding("1.2.3.4")]
        assert paths == ["/a.jpg", "/b.jpg"]
