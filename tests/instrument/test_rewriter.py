"""Tests for repro.instrument.rewriter."""

from __future__ import annotations

import pytest

from repro.html.links import extract_references
from repro.http.uri import Url
from repro.instrument.keys import BeaconKind, InstrumentationRegistry
from repro.instrument.rewriter import (
    InstrumentConfig,
    PageInstrumenter,
    beacon_response,
)
from repro.instrument.ua_probe import interpret_ua_probe
from repro.util.rng import RngStream

PAGE = (
    "<html><head><title>t</title></head>"
    '<body><p>hello</p><a href="/x.html">x</a></body></html>'
)
URL = Url.parse("http://h.com/dir/page.html")


def _instrument(html=PAGE, config=None, seed=3):
    registry = InstrumentationRegistry()
    instrumenter = PageInstrumenter(
        registry, RngStream(seed, "i"), config or InstrumentConfig()
    )
    result = instrumenter.instrument(html, URL, "1.2.3.4", 0.0)
    return result, registry


class TestInjection:
    def test_all_probes_registered(self):
        result, registry = _instrument()
        kinds = [p.kind for p in result.probes]
        assert kinds.count(BeaconKind.CSS_BEACON) == 1
        assert kinds.count(BeaconKind.BEACON_JS) == 1
        assert kinds.count(BeaconKind.MOUSE_IMAGE) == 5  # real + 4 decoys
        assert kinds.count(BeaconKind.UA_PROBE) == 1
        assert kinds.count(BeaconKind.TRAP_PAGE) == 1
        assert kinds.count(BeaconKind.TRAP_IMAGE) == 1
        assert len(registry) == len(result.probes)

    def test_page_references_probes(self):
        result, _ = _instrument()
        refs = extract_references(result.html)
        assert any(".css" in s for s in refs.stylesheets)
        assert any(s.startswith("./page_") for s in refs.scripts)
        assert "onmousemove" in refs.body_event_handlers
        assert refs.hidden_links  # the trap
        assert any(
            interpret_ua_probe(s) is not None for s in refs.inline_scripts
        )

    def test_beacon_js_is_sibling_of_page(self):
        result, _ = _instrument()
        js_probe = next(
            p for p in result.probes if p.kind is BeaconKind.BEACON_JS
        )
        assert js_probe.path.startswith("/dir/page_")
        assert js_probe.path.endswith(".js")

    def test_original_content_preserved(self):
        result, _ = _instrument()
        assert "<p>hello</p>" in result.html
        assert '<a href="/x.html">x</a>' in result.html

    def test_added_bytes_positive(self):
        result, _ = _instrument()
        assert result.added_bytes > 0

    def test_handler_resolves_in_served_script(self):
        from repro.instrument.js_beacon import find_handler_fetch_url

        result, _ = _instrument()
        refs = extract_references(result.html)
        handler = refs.body_event_handlers["onmousemove"]
        js_probe = next(
            p for p in result.probes if p.kind is BeaconKind.BEACON_JS
        )
        url = find_handler_fetch_url(js_probe.payload.decode(), handler)
        real = next(
            p
            for p in result.probes
            if p.kind is BeaconKind.MOUSE_IMAGE and p.is_real_key
        )
        assert url == f"http://h.com{real.path}"

    def test_fresh_probes_per_call(self):
        registry = InstrumentationRegistry()
        instrumenter = PageInstrumenter(registry, RngStream(3, "i"))
        a = instrumenter.instrument(PAGE, URL, "1.2.3.4", 0.0)
        b = instrumenter.instrument(PAGE, URL, "1.2.3.4", 0.0)
        key_a = next(p for p in a.probes if p.is_real_key).key
        key_b = next(p for p in b.probes if p.is_real_key).key
        assert key_a != key_b
        assert instrumenter.pages_instrumented == 2


class TestConfigToggles:
    def test_disable_all(self):
        config = InstrumentConfig(
            mouse_beacon=False, css_beacon=False,
            hidden_link=False, ua_probe=False,
        )
        result, registry = _instrument(config=config)
        assert result.probes == []
        assert len(registry) == 0
        assert "onmousemove" not in result.html

    def test_decoy_count_config(self):
        result, _ = _instrument(config=InstrumentConfig(decoys=9))
        mouse = [p for p in result.probes if p.kind is BeaconKind.MOUSE_IMAGE]
        assert len(mouse) == 10
        assert sum(1 for p in mouse if p.is_real_key) == 1

    def test_no_obfuscation(self):
        result, _ = _instrument(config=InstrumentConfig(obfuscate=False))
        js = next(p for p in result.probes if p.kind is BeaconKind.BEACON_JS)
        assert b"_0x" not in js.payload


class TestTreePath:
    def test_fragment_without_head_body(self):
        result, registry = _instrument(html="<p>bare fragment</p>")
        assert "bare fragment" in result.html
        refs = extract_references(result.html)
        assert "onmousemove" in refs.body_event_handlers
        assert len(registry) == len(result.probes)

    def test_fast_and_tree_paths_register_same_probe_kinds(self):
        fast, _ = _instrument(html=PAGE, seed=5)
        tree, _ = _instrument(html="<p>x</p>", seed=5)
        assert sorted(p.kind.value for p in fast.probes) == sorted(
            p.kind.value for p in tree.probes
        )


class TestBeaconResponses:
    @pytest.mark.parametrize(
        "kind,content_type",
        [
            (BeaconKind.BEACON_JS, "application/javascript"),
            (BeaconKind.MOUSE_IMAGE, "image/jpeg"),
            (BeaconKind.CSS_BEACON, "text/css"),
            (BeaconKind.UA_PROBE, "text/css"),
            (BeaconKind.TRAP_PAGE, "text/html"),
            (BeaconKind.TRAP_IMAGE, "image/gif"),
        ],
    )
    def test_serving(self, kind, content_type):
        result, registry = _instrument()
        probe = next(p for p in result.probes if p.kind is kind)
        from repro.instrument.keys import BeaconHit

        response = beacon_response(BeaconHit(probe=probe))
        assert response.status == 200
        assert response.content_type == content_type

    def test_probe_responses_uncacheable(self):
        result, _ = _instrument()
        from repro.instrument.keys import BeaconHit

        for probe in result.probes:
            if probe.kind is BeaconKind.TRAP_IMAGE:
                continue
            response = beacon_response(BeaconHit(probe=probe))
            assert response.headers.is_uncacheable(), probe.kind

    def test_css_beacon_empty_body(self):
        result, _ = _instrument()
        from repro.instrument.keys import BeaconHit

        probe = next(
            p for p in result.probes if p.kind is BeaconKind.CSS_BEACON
        )
        assert beacon_response(BeaconHit(probe=probe)).body == b""
