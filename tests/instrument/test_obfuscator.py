"""Tests for repro.instrument.obfuscator."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.instrument.js_beacon import (
    build_beacon_script,
    extract_all_script_urls,
    find_handler_fetch_url,
)
from repro.instrument.obfuscator import obfuscate_beacon, obfuscate_script
from repro.util.rng import RngStream


class TestObfuscation:
    def test_identifiers_renamed(self, rng):
        script = build_beacon_script(rng, "h.com")
        out = obfuscate_script(script.source, rng.split("obf"))
        assert script.handler_function not in out

    def test_urls_survive(self, rng):
        script = build_beacon_script(rng, "h.com", decoys=3)
        out = obfuscate_script(script.source, rng.split("obf"))
        assert set(extract_all_script_urls(out)) == set(
            extract_all_script_urls(script.source)
        )

    def test_junk_grows_source(self, rng):
        script = build_beacon_script(rng, "h.com")
        out = obfuscate_script(script.source, rng.split("obf"), junk_statements=10)
        assert len(out) > len(script.source)

    def test_zero_junk(self, rng):
        script = build_beacon_script(rng, "h.com")
        out = obfuscate_script(script.source, rng.split("obf"), junk_statements=0)
        assert extract_all_script_urls(out) == extract_all_script_urls(
            script.source
        )


class TestObfuscateBeacon:
    def test_handler_still_resolves(self, rng):
        script = build_beacon_script(rng, "h.com", decoys=5)
        source, expression = obfuscate_beacon(
            script.source, script.handler_expression, rng.split("obf")
        )
        url = find_handler_fetch_url(source, expression)
        assert url == f"http://h.com{script.real_image_path}"

    def test_decoys_never_become_the_handler(self, rng):
        for i in range(20):
            stream = rng.split(f"case-{i}")
            script = build_beacon_script(stream, "h.com", decoys=5)
            source, expression = obfuscate_beacon(
                script.source, script.handler_expression, stream.split("obf")
            )
            url = find_handler_fetch_url(source, expression)
            for decoy in script.decoy_image_paths:
                assert url != f"http://h.com{decoy}"

    def test_deterministic(self):
        script = build_beacon_script(RngStream(4), "h.com")
        a = obfuscate_beacon(
            script.source, script.handler_expression, RngStream(9)
        )
        b = obfuscate_beacon(
            script.source, script.handler_expression, RngStream(9)
        )
        assert a == b


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    decoys=st.integers(min_value=0, max_value=8),
    junk=st.integers(min_value=0, max_value=12),
)
def test_property_obfuscation_preserves_semantics(seed, decoys, junk):
    """The simulated JS engine resolves the same fetch URL before and
    after obfuscation — the invariant real browsers give us for free."""
    stream = RngStream(seed)
    script = build_beacon_script(stream, "host.example", decoys=decoys)
    source, expression = obfuscate_beacon(
        script.source, script.handler_expression, stream.split("obf"), junk
    )
    url = find_handler_fetch_url(source, expression)
    assert url == f"http://host.example{script.real_image_path}"
