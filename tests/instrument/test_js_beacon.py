"""Tests for repro.instrument.js_beacon."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.instrument.js_beacon import (
    build_beacon_script,
    extract_all_script_urls,
    find_handler_fetch_url,
)
from repro.util.rng import RngStream


class TestBuild:
    def test_decoy_count(self, rng):
        script = build_beacon_script(rng, "h.com", decoys=4)
        assert len(script.decoy_keys) == 4
        assert len(script.all_image_paths) == 5

    def test_keys_distinct(self, rng):
        script = build_beacon_script(rng, "h.com", decoys=8)
        keys = {script.real_key, *script.decoy_keys}
        assert len(keys) == 9

    def test_key_width(self, rng):
        script = build_beacon_script(rng, "h.com", key_bits=128)
        assert len(script.real_key) == 32

    def test_source_shape(self, rng):
        script = build_beacon_script(rng, "h.com", decoys=2)
        assert script.source.count("function ") == 3
        assert script.source.count("new Image()") == 3
        assert script.source.count("do_once") == 0  # fresh names per func

    def test_zero_decoys(self, rng):
        script = build_beacon_script(rng, "h.com", decoys=0)
        assert script.decoy_keys == ()
        assert extract_all_script_urls(script.source) == [
            f"http://h.com{script.real_image_path}"
        ]

    def test_negative_decoys_rejected(self, rng):
        with pytest.raises(ValueError):
            build_beacon_script(rng, "h.com", decoys=-1)

    def test_handler_expression_names_real_function(self, rng):
        script = build_beacon_script(rng, "h.com")
        assert script.handler_function in script.handler_expression


class TestHandlerResolution:
    def test_resolves_real_url(self, rng):
        script = build_beacon_script(rng, "h.com", decoys=6)
        url = find_handler_fetch_url(script.source, script.handler_expression)
        assert url == f"http://h.com{script.real_image_path}"

    def test_never_resolves_to_decoy(self, rng):
        for i in range(20):
            script = build_beacon_script(rng.split(f"s{i}"), "h.com", decoys=6)
            url = find_handler_fetch_url(
                script.source, script.handler_expression
            )
            for decoy_path in script.decoy_image_paths:
                assert url != f"http://h.com{decoy_path}"

    def test_unknown_handler_returns_none(self, rng):
        script = build_beacon_script(rng, "h.com")
        assert find_handler_fetch_url(script.source, "return nope();") is None

    def test_garbage_expression_returns_none(self, rng):
        script = build_beacon_script(rng, "h.com")
        assert find_handler_fetch_url(script.source, "alert(1)") is None

    def test_empty_source_returns_none(self):
        assert find_handler_fetch_url("", "return f();") is None


class TestUrlScraping:
    def test_finds_all_urls(self, rng):
        script = build_beacon_script(rng, "h.com", decoys=5)
        urls = extract_all_script_urls(script.source)
        assert len(urls) == 6
        assert f"http://h.com{script.real_image_path}" in urls
        for decoy in script.decoy_image_paths:
            assert f"http://h.com{decoy}" in urls


class TestBlindFetchProbability:
    def test_uniform_blind_pick_catch_rate(self):
        """§2.1: a blind fetch hits a wrong key with probability m/(m+1)."""
        rng = RngStream(77, "blind")
        for m in (1, 2, 4, 9):
            wrong = 0
            trials = 2000
            for i in range(trials):
                script = build_beacon_script(
                    rng.split(f"b{m}-{i}"), "h.com", decoys=m
                )
                urls = extract_all_script_urls(script.source)
                pick = rng.choice(urls)
                if pick != f"http://h.com{script.real_image_path}":
                    wrong += 1
            expected = m / (m + 1)
            assert abs(wrong / trials - expected) < 0.04, (
                f"m={m}: observed {wrong / trials:.3f}, expected {expected:.3f}"
            )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    decoys=st.integers(min_value=0, max_value=10),
)
def test_property_handler_resolution(seed, decoys):
    script = build_beacon_script(RngStream(seed), "host.example", decoys=decoys)
    url = find_handler_fetch_url(script.source, script.handler_expression)
    assert url == f"http://host.example{script.real_image_path}"
