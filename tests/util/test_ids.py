"""Tests for repro.util.ids."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.ids import IdGenerator, random_hex_key, random_numeric_key
from repro.util.rng import RngStream


class TestRandomHexKey:
    def test_width(self, rng):
        key = random_hex_key(rng, 128)
        assert len(key) == 32
        int(key, 16)  # parses as hex

    def test_distinct(self, rng):
        keys = {random_hex_key(rng, 128) for _ in range(100)}
        assert len(keys) == 100

    def test_invalid_bits(self, rng):
        with pytest.raises(ValueError):
            random_hex_key(rng, 0)
        with pytest.raises(ValueError):
            random_hex_key(rng, 13)

    def test_deterministic(self):
        a = random_hex_key(RngStream(3), 64)
        b = random_hex_key(RngStream(3), 64)
        assert a == b


class TestRandomNumericKey:
    def test_width_and_digits(self, rng):
        key = random_numeric_key(rng, 10)
        assert len(key) == 10
        assert key.isdigit()

    def test_invalid_digits(self, rng):
        with pytest.raises(ValueError):
            random_numeric_key(rng, 0)


class TestIdGenerator:
    def test_sequence(self):
        gen = IdGenerator("sess")
        assert gen.next() == "sess-000001"
        assert gen.next() == "sess-000002"

    def test_width(self):
        gen = IdGenerator("x", width=3)
        assert gen.next() == "x-001"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            IdGenerator("x", width=0)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**9),
    digits=st.integers(min_value=1, max_value=20),
)
def test_property_numeric_key_width(seed, digits):
    key = random_numeric_key(RngStream(seed), digits)
    assert len(key) == digits
    assert key.isdigit()
