"""Tests for repro.util.timeutil."""

from __future__ import annotations

import pytest

from repro.util.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    format_duration,
    parse_duration,
)


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("90s", 90.0),
            ("1.5h", 1.5 * HOUR),
            ("2d", 2 * DAY),
            ("500ms", 0.5),
            ("3m", 3 * MINUTE),
            ("1w", WEEK),
            (" 10 s ", 10.0),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "10", "h", "10 hours", "-5s"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_duration(text)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.25, "250ms"),
            (5.0, "5.0s"),
            (90.0, "1.5m"),
            (HOUR * 2, "2.0h"),
            (DAY * 3, "3.0d"),
        ],
    )
    def test_values(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)

    def test_roundtrip_order_of_magnitude(self):
        for seconds in (0.5, 7.0, 300.0, 7200.0, 2 * DAY):
            parsed = parse_duration(format_duration(seconds))
            assert 0.4 * seconds <= parsed <= 2.5 * seconds
