"""Tests for repro.util.rng."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import RngStream


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RngStream(42)
        b = RngStream(42)
        assert [a.random() for _ in range(20)] == [
            b.random() for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = RngStream(42)
        b = RngStream(43)
        assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]

    def test_split_is_stable_across_parent_consumption(self):
        parent1 = RngStream(7)
        child_before = parent1.split("x")
        parent2 = RngStream(7)
        for _ in range(100):
            parent2.random()
        child_after = parent2.split("x")
        assert [child_before.random() for _ in range(10)] == [
            child_after.random() for _ in range(10)
        ]

    def test_split_labels_are_independent(self):
        parent = RngStream(7)
        a = parent.split("a")
        b = parent.split("b")
        assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]

    def test_split_label_propagates(self):
        child = RngStream(7, "root").split("site")
        assert child.label == "root/site"

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStream(-1)


class TestScalarDraws:
    def test_uniform_bounds(self, rng):
        for _ in range(200):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_bounds(self, rng):
        values = {rng.randint(1, 4) for _ in range(300)}
        assert values == {1, 2, 3, 4}

    def test_randrange_bounds(self, rng):
        values = {rng.randrange(5) for _ in range(300)}
        assert values == {0, 1, 2, 3, 4}

    def test_bernoulli_edges(self, rng):
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.5) is True
        assert rng.bernoulli(-0.5) is False

    def test_bernoulli_rate(self, rng):
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_exponential_mean(self, rng):
        samples = [rng.exponential(4.0) for _ in range(4000)]
        assert 3.6 < sum(samples) / len(samples) < 4.4

    def test_exponential_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_lognormal_median(self, rng):
        samples = sorted(rng.lognormal(8.0, 0.7) for _ in range(4001))
        median = samples[len(samples) // 2]
        assert 7.0 < median < 9.2

    def test_poisson_zero_lambda(self, rng):
        assert rng.poisson(0.0) == 0

    def test_poisson_mean_small_lambda(self, rng):
        samples = [rng.poisson(3.0) for _ in range(4000)]
        assert 2.8 < sum(samples) / len(samples) < 3.2

    def test_poisson_large_lambda_uses_gaussian(self, rng):
        samples = [rng.poisson(100.0) for _ in range(2000)]
        mean = sum(samples) / len(samples)
        assert 97.0 < mean < 103.0
        assert all(s >= 0 for s in samples)

    def test_poisson_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            rng.poisson(-1.0)

    def test_geometric_bounds_and_mean(self, rng):
        samples = [rng.geometric(0.25) for _ in range(4000)]
        assert min(samples) >= 1
        assert 3.6 < sum(samples) / len(samples) < 4.4

    def test_geometric_certain_success(self, rng):
        assert rng.geometric(1.0) == 1

    def test_geometric_rejects_out_of_range(self, rng):
        with pytest.raises(ValueError):
            rng.geometric(0.0)

    def test_getrandbits_width(self, rng):
        for _ in range(100):
            assert 0 <= rng.getrandbits(16) < (1 << 16)


class TestCollections:
    def test_choice_empty_raises(self, rng):
        with pytest.raises(ValueError):
            rng.choice([])

    def test_choice_member(self, rng):
        items = ["a", "b", "c"]
        for _ in range(50):
            assert rng.choice(items) in items

    def test_weighted_choice_respects_zero_weight(self, rng):
        for _ in range(200):
            assert rng.weighted_choice(["x", "y"], [1.0, 0.0]) == "x"

    def test_weighted_choice_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            rng.weighted_choice(["x"], [1.0, 2.0])

    def test_shuffled_preserves_multiset(self, rng):
        items = list(range(30))
        out = rng.shuffled(items)
        assert sorted(out) == items
        assert items == list(range(30))  # input untouched

    def test_sample_distinct(self, rng):
        out = rng.sample(list(range(20)), 10)
        assert len(set(out)) == 10


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**64), label=st.text(min_size=1, max_size=20))
def test_property_split_deterministic(seed, label):
    a = RngStream(seed).split(label)
    b = RngStream(seed).split(label)
    assert a.random() == b.random()


@settings(max_examples=40, deadline=None)
@given(
    p=st.floats(min_value=0.01, max_value=0.99),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_geometric_at_least_one(p, seed):
    rng = RngStream(seed)
    value = rng.geometric(p)
    assert value >= 1
    assert math.isfinite(value)
