"""Tests for repro.util.stats."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.util.stats import Ecdf, mean, percentile, summarize


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5.0

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_value(self):
        assert percentile([7], 95) == 7.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == 2.5

    def test_single_sample_zero_std(self):
        s = summarize([3.0])
        assert s.std == 0.0

    def test_str_contains_count(self):
        assert "n=2" in str(summarize([1.0, 2.0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestEcdf:
    def test_fraction_at_or_below(self):
        e = Ecdf([1, 2, 3, 4])
        assert e.fraction_at_or_below(0) == 0.0
        assert e.fraction_at_or_below(2) == 0.5
        assert e.fraction_at_or_below(4) == 1.0
        assert e.fraction_at_or_below(10) == 1.0

    def test_duplicates(self):
        e = Ecdf([1, 1, 1, 5])
        assert e.fraction_at_or_below(1) == 0.75

    def test_quantile(self):
        e = Ecdf(range(1, 101))
        assert e.quantile(0.95) == 95
        assert e.quantile(1.0) == 100

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Ecdf([1]).quantile(0.0)

    def test_points_are_monotone(self):
        e = Ecdf([3, 1, 4, 1, 5, 9, 2, 6])
        points = e.points()
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Ecdf([])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
def test_property_percentile_within_range(data):
    for q in (0, 25, 50, 75, 100):
        value = percentile(data, q)
        assert min(data) <= value <= max(data)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60))
def test_property_ecdf_monotone(data):
    e = Ecdf(data)
    xs = sorted({min(data), max(data), 0.0})
    values = [e.fraction_at_or_below(x) for x in xs]
    assert values == sorted(values)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=80),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_property_ecdf_quantile_inverse(data, q):
    e = Ecdf(data)
    v = e.quantile(q)
    assert e.fraction_at_or_below(v) >= q
