"""Behavioural tests for the human browser model.

Each test drives a BrowserAgent against a real instrumented proxy node
and asserts on what the *detector* concluded — the observable channel.
"""

from __future__ import annotations

from repro.agents.behavior import (
    BehaviorProfile,
    JS_DISABLED_BROWSER,
    STANDARD_BROWSER,
)
from repro.agents.browser import BrowserAgent, BrowserConfig
from repro.util.rng import RngStream
from repro.workload.session_run import SessionRunner

FAST = BrowserConfig(
    min_pages=4,
    max_pages=6,
    warmup_probability=0.0,
    long_warmup_probability=0.0,
    external_referer_probability=0.0,
)


def _run_browser(make_node, entry_url, profile, seed=1, config=FAST):
    node = make_node()
    agent = BrowserAgent(
        client_ip="10.5.0.1",
        user_agent="Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)",
        rng=RngStream(seed, "agent"),
        entry_url=entry_url,
        profile=profile,
        config=config,
    )
    record = SessionRunner(node.handle).run(agent)
    state = node.detection.tracker.get(agent.client_ip, agent.user_agent)
    return record, state, node


class TestStandardBrowser:
    def test_full_evidence_trail(self, make_node, entry_url):
        profile = BehaviorProfile(mouse_move_probability=1.0)
        record, state, _ = _run_browser(make_node, entry_url, profile)
        assert state is not None
        assert state.in_css_set, "browser must fetch the beacon CSS"
        assert state.in_js_set, "JS browser must execute the UA probe"
        assert state.in_mouse_set, "mouse user must trigger the beacon"
        assert state.beacon_js_at is not None
        assert not state.followed_hidden_link
        assert not state.ua_mismatched
        assert state.wrong_key_fetches == 0

    def test_is_classified_human(self, make_node, entry_url):
        profile = BehaviorProfile(mouse_move_probability=1.0)
        _, state, node = _run_browser(make_node, entry_url, profile)
        verdict = node.detection.classifier.classify_final(state)
        assert verdict.label.value == "human"

    def test_browser_fetches_trap_image_not_trap_page(
        self, make_node, entry_url
    ):
        profile = BehaviorProfile(mouse_move_probability=1.0)
        _, state, _ = _run_browser(make_node, entry_url, profile)
        assert not state.followed_hidden_link

    def test_never_mouse_profile_produces_no_mouse(self, make_node, entry_url):
        profile = BehaviorProfile(mouse_user=False)
        _, state, _ = _run_browser(make_node, entry_url, profile)
        assert state.in_js_set
        assert not state.in_mouse_set


class TestJsDisabledBrowser:
    def test_css_without_js(self, make_node, entry_url):
        _, state, node = _run_browser(
            make_node, entry_url, JS_DISABLED_BROWSER
        )
        assert state.in_css_set
        assert not state.in_js_set
        assert not state.in_mouse_set
        # The set algebra still calls this a human.
        verdict = node.detection.classifier.classify_final(state)
        assert verdict.label.value == "human"

    def test_no_script_fetches(self, make_node, entry_url):
        _, state, _ = _run_browser(make_node, entry_url, JS_DISABLED_BROWSER)
        assert state.beacon_js_at is None


class TestWarmup:
    def test_warmup_delays_first_page(self, make_node, entry_url):
        config = BrowserConfig(
            min_pages=2,
            max_pages=3,
            warmup_probability=1.0,
            warmup_max=8,
            long_warmup_probability=0.0,
        )
        profile = BehaviorProfile(mouse_move_probability=1.0)
        _, state, _ = _run_browser(
            make_node, entry_url, profile, config=config
        )
        # The CSS beacon cannot be the very first requests: warmup precedes.
        assert state.css_beacon_at is not None
        assert state.css_beacon_at > 1


class TestRedirects:
    def test_browser_follows_cgi_redirects(
        self, make_node, entry_url, small_site
    ):
        # Force navigation through a CGI link page by many pages.
        config = BrowserConfig(
            min_pages=10, max_pages=14,
            warmup_probability=0.0, long_warmup_probability=0.0,
        )
        profile = BehaviorProfile(mouse_move_probability=0.0, mouse_user=False)
        seen_redirect = False
        for seed in range(12):
            _, state, _ = _run_browser(
                make_node, entry_url, profile, seed=seed, config=config
            )
            if state is not None and state.status_3xx > 0:
                seen_redirect = True
                break
        assert seen_redirect, "humans should encounter CGI redirects"


class TestDeterminism:
    def test_same_seed_same_stream(self, make_node, entry_url):
        profile = STANDARD_BROWSER
        record_a, state_a, _ = _run_browser(
            make_node, entry_url, profile, seed=42
        )
        record_b, state_b, _ = _run_browser(
            make_node, entry_url, profile, seed=42
        )
        assert record_a.requests == record_b.requests
        assert state_a.css_beacon_at == state_b.css_beacon_at
        assert state_a.mouse_event_at == state_b.mouse_event_at
