"""Tests for repro.agents.population and the named mixes."""

from __future__ import annotations

import pytest

from repro.agents.population import AgentSpec, IpAllocator, PopulationMix
from repro.util.rng import RngStream
from repro.workload.mixes import CODEEN_WEEK, ML_STUDY, SMOKE, mix_by_name


class TestIpAllocator:
    def test_unique(self):
        allocator = IpAllocator(RngStream(1))
        ips = {allocator.next() for _ in range(5000)}
        assert len(ips) == 5000

    def test_valid_dotted_quads(self):
        allocator = IpAllocator(RngStream(1))
        for _ in range(100):
            parts = allocator.next().split(".")
            assert len(parts) == 4
            assert all(0 <= int(p) <= 255 for p in parts)


class TestPopulationMix:
    def test_sampling_respects_weights(self):
        mix = CODEEN_WEEK
        rng = RngStream(7, "sample")
        agents = mix.sample_many(rng, "http://h.com/index.html", 800)
        kinds = {}
        for agent in agents:
            kinds[agent.kind] = kinds.get(agent.kind, 0) + 1
        human_fraction = (
            kinds.get("human_js", 0) + kinds.get("human_nojs", 0)
        ) / 800
        assert 0.18 < human_fraction < 0.32
        assert kinds.get("crawler", 0) > kinds.get("crawler_hidden", 0)

    def test_kind_set_from_spec_name(self):
        agents = SMOKE.sample_many(
            RngStream(3), "http://h.com/index.html", 60
        )
        expected = {spec.name for spec in SMOKE.specs}
        assert {a.kind for a in agents} <= expected

    def test_unique_ips(self):
        agents = SMOKE.sample_many(
            RngStream(3), "http://h.com/index.html", 100
        )
        assert len({a.client_ip for a in agents}) == 100

    def test_deterministic(self):
        a = CODEEN_WEEK.sample_many(RngStream(9), "http://h/x.html", 50)
        b = CODEEN_WEEK.sample_many(RngStream(9), "http://h/x.html", 50)
        assert [x.kind for x in a] == [y.kind for y in b]
        assert [x.client_ip for x in a] == [y.client_ip for y in b]

    def test_fraction_lookup(self):
        assert CODEEN_WEEK.fraction("human_js") == pytest.approx(0.236, abs=0.01)
        with pytest.raises(KeyError):
            CODEEN_WEEK.fraction("nonexistent")

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            PopulationMix("empty", [])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AgentSpec("x", -1.0, lambda **kw: None, ("ua",))
        with pytest.raises(ValueError):
            AgentSpec("x", 1.0, lambda **kw: None, ())


class TestNamedMixes:
    def test_lookup(self):
        assert mix_by_name("codeen_week") is CODEEN_WEEK
        assert mix_by_name("ml_study") is ML_STUDY
        with pytest.raises(KeyError):
            mix_by_name("nope")

    def test_codeen_week_weights_sum_to_100(self):
        total = sum(spec.weight for spec in CODEEN_WEEK.specs)
        assert total == pytest.approx(100.0, abs=0.5)

    def test_ml_study_class_balance_matches_paper(self):
        """Paper: 42,975 human vs 124,271 robot ≈ 25.7% human."""
        human = sum(
            spec.weight
            for spec in ML_STUDY.specs
            if spec.name.startswith("human")
        )
        total = sum(spec.weight for spec in ML_STUDY.specs)
        assert 0.22 < human / total < 0.30
