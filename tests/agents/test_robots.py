"""Behavioural tests for the robot bestiary, through the real pipeline."""

from __future__ import annotations

import pytest

from repro.agents.robots import (
    BlindFetcherBot,
    ClickFraudBot,
    CrawlerBot,
    DdosZombie,
    EmailHarvesterBot,
    EngineBot,
    HotlinkLeechBot,
    MouseForgerBot,
    OfflineBrowserBot,
    ReferrerSpammerBot,
    VulnScannerBot,
)
from repro.detection.verdict import Label
from repro.util.rng import RngStream
from repro.workload.session_run import SessionRunner

ROBOT_UA = "Googlebot/2.1 (+http://www.google.com/bot.html)"
BROWSER_UA = "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)"


def _run(make_node, entry_url, bot_cls, ua=ROBOT_UA, seed=3, **kwargs):
    node = make_node()
    agent = bot_cls(
        client_ip="10.6.0.1",
        user_agent=ua,
        rng=RngStream(seed, "bot"),
        entry_url=entry_url,
        **kwargs,
    )
    record = SessionRunner(node.handle).run(agent)
    state = node.detection.tracker.get(agent.client_ip, agent.user_agent)
    return record, state, node


def _final_label(node, state):
    return node.detection.classifier.classify_final(state).label


class TestCrawler:
    def test_html_only_no_probes(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, CrawlerBot, max_requests=40
        )
        assert record.requests > 10
        assert not state.in_css_set
        assert not state.in_js_set
        assert not state.in_mouse_set
        assert _final_label(node, state) is Label.ROBOT

    def test_polite_crawler_respects_robots_txt(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, CrawlerBot, max_requests=60, polite=True
        )
        assert state.cgi_requests == 0  # /cgi-bin/ disallowed

    def test_hidden_follower_trips_trap(self, make_node, entry_url):
        _, state, node = _run(
            make_node, entry_url, CrawlerBot,
            max_requests=120, polite=False, follow_hidden=True,
        )
        assert state.followed_hidden_link
        verdict = node.detection.classifier.classify_final(state)
        assert verdict.label is Label.ROBOT
        assert verdict.definitive

    def test_visible_only_crawler_avoids_trap(self, make_node, entry_url):
        _, state, _ = _run(
            make_node, entry_url, CrawlerBot,
            max_requests=120, follow_hidden=False,
        )
        assert not state.followed_hidden_link

    def test_image_crawler_fetches_images_not_css(self, make_node, entry_url):
        record, state, _ = _run(
            make_node, entry_url, CrawlerBot,
            max_requests=80, fetch_images=True,
        )
        assert not state.in_css_set


class TestEmailHarvester:
    def test_profile(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, EmailHarvesterBot, max_requests=40
        )
        assert not state.in_css_set
        assert _final_label(node, state) is Label.ROBOT


class TestReferrerSpammer:
    def test_forged_referrers(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, ReferrerSpammerBot,
            ua=BROWSER_UA, max_requests=30,
        )
        assert _final_label(node, state) is Label.ROBOT
        assert record.requests >= 20


class TestClickFraud:
    def test_hits_cgi(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, ClickFraudBot,
            ua=BROWSER_UA, max_requests=50, seed=5,
        )
        assert state.cgi_requests > 0
        assert _final_label(node, state) is Label.ROBOT


class TestVulnScanner:
    def test_piles_up_404s(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, VulnScannerBot,
            ua=BROWSER_UA, max_requests=40,
        )
        assert state.status_4xx > 10
        assert _final_label(node, state) is Label.ROBOT

    def test_uses_head_requests(self, make_node, entry_url):
        _, state, _ = _run(
            make_node, entry_url, VulnScannerBot,
            ua=BROWSER_UA, max_requests=60, head_fraction=0.5,
        )
        assert state.head_requests > 0

    def test_gets_blocked_by_policy(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, VulnScannerBot,
            ua=BROWSER_UA, max_requests=80,
        )
        assert node.stats.policy_blocked > 0


class TestDdosZombie:
    def test_flood_blocked(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, DdosZombie,
            ua=BROWSER_UA, max_requests=150,
        )
        assert node.stats.policy_blocked > 0
        assert _final_label(node, state) is Label.ROBOT


class TestOfflineBrowser:
    def test_fetches_css_without_js(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, OfflineBrowserBot,
            ua="WebZIP/6.0", max_requests=80,
        )
        assert state.in_css_set
        assert not state.in_js_set
        # This is the acknowledged false positive of the set algebra:
        assert state.is_human_by_set_algebra
        assert state.true_label == ""  # ground truth set by engine, not here


class TestEngineBot:
    def test_js_without_mouse_is_robot(self, make_node, entry_url):
        _, state, node = _run(
            make_node, entry_url, EngineBot, ua=BROWSER_UA, seed=8
        )
        assert state.in_css_set
        assert state.in_js_set
        assert not state.in_mouse_set
        assert _final_label(node, state) is Label.ROBOT

    def test_forged_header_mismatch(self, make_node, entry_url):
        _, state, node = _run(
            make_node, entry_url, EngineBot,
            ua="Wget/1.10.2", forge_header=True, seed=8,
        )
        assert state.ua_mismatched
        verdict = node.detection.classifier.classify_final(state)
        assert verdict.definitive

    def test_honest_engine_no_mismatch(self, make_node, entry_url):
        _, state, _ = _run(
            make_node, entry_url, EngineBot, ua=BROWSER_UA, forge_header=False
        )
        assert not state.ua_mismatched


class TestBlindFetcher:
    def test_eventually_caught_by_decoys(self, make_node, entry_url):
        caught = 0
        runs = 12
        for seed in range(runs):
            _, state, node = _run(
                make_node, entry_url, BlindFetcherBot,
                ua=BROWSER_UA, seed=seed, fetch_per_page=1, max_pages=4,
            )
            if state.wrong_key_fetches > 0:
                caught += 1
        # With m=4 decoys each blind pick is wrong w.p. 4/5; over several
        # pages per run, near-certain catch.  Allow generous slack.
        assert caught >= runs * 0.6

    def test_wrong_key_is_definitive_robot(self, make_node, entry_url):
        for seed in range(10):
            _, state, node = _run(
                make_node, entry_url, BlindFetcherBot,
                ua=BROWSER_UA, seed=seed, fetch_per_page=2,
            )
            if state.wrong_key_fetches:
                verdict = node.detection.classifier.classify_final(state)
                assert verdict.label is Label.ROBOT
                assert verdict.definitive
                return
        pytest.fail("no blind fetch hit a decoy in 10 seeded runs")


class TestMouseForger:
    def test_defeats_detection(self, make_node, entry_url):
        """§4.1: a bot that synthesises mouse events wins (for now)."""
        _, state, node = _run(
            make_node, entry_url, MouseForgerBot, ua=BROWSER_UA, seed=4
        )
        assert state.in_mouse_set
        assert _final_label(node, state) is Label.HUMAN  # evaded!


class TestHotlinkLeech:
    def test_images_with_unseen_referrers(self, make_node, entry_url):
        record, state, node = _run(
            make_node, entry_url, HotlinkLeechBot,
            ua=BROWSER_UA, max_requests=30,
        )
        assert not state.in_css_set
        assert _final_label(node, state) is Label.ROBOT
