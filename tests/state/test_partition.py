"""Routing tests for the partition hash and lane assignment.

The client-IP hash is the single routing primitive shared by detection
shards, the partitioned state stores and the per-shard ingress lanes —
so its distribution and stability properties are load-bearing for both
correctness (containment: a lane owns all state its requests touch)
and throughput (balanced partitions).
"""

from __future__ import annotations

import pytest

from repro.proxy.network import ProxyNetwork
from repro.state.partition import PartitionMap, partition_index
from repro.util.rng import RngStream

N_IPS = 10_000


def _ips(n=N_IPS):
    return [f"10.{i // 65536}.{(i // 256) % 256}.{i % 256}" for i in range(n)]


class TestPartitionIndex:
    def test_stable_and_in_range(self):
        for n in (1, 2, 3, 16, 64):
            index = partition_index("203.0.113.9", n)
            assert 0 <= index < n
            assert index == partition_index("203.0.113.9", n)

    def test_single_partition_short_circuits(self):
        assert partition_index("anything", 1) == 0
        assert partition_index("anything", 0) == 0

    def test_uniform_across_partitions(self):
        """Bounded skew over 10k IPs: no partition starves or hogs.

        Perfectly uniform would be 625 per bucket over 16 partitions;
        a ±25% band is far looser than the hash's observed spread but
        tight enough to catch any accidental change of hash function,
        digest width, or byte order.
        """
        counts = [0] * 16
        for ip in _ips():
            counts[partition_index(ip, 16)] += 1
        assert sum(counts) == N_IPS
        expected = N_IPS / 16
        assert min(counts) > expected * 0.75
        assert max(counts) < expected * 1.25

    def test_independent_of_node_hash(self):
        """Shard routing must not correlate with node routing, or some
        (node, shard) lanes would sit idle while others take the load."""
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "net"),
            n_nodes=4,
            instrument_enabled=False,
        )
        counts: dict[tuple[int, int], int] = {}
        for ip in _ips(4000):
            pair = (network.node_index_for(ip), partition_index(ip, 4))
            counts[pair] = counts.get(pair, 0) + 1
        assert len(counts) == 16  # every (node, shard) cell populated
        assert min(counts.values()) > (4000 / 16) * 0.5


class TestPartitionMap:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionMap(0)
        with pytest.raises(ValueError):
            PartitionMap(-3)

    def test_index_label_group(self):
        pmap = PartitionMap(4)
        assert pmap.n_partitions == 4
        assert pmap.label(3) == "03"
        keys = [f"192.0.2.{i}" for i in range(40)]
        grouped = pmap.group(keys)
        assert len(grouped) == 4
        assert sorted(k for ks in grouped for k in ks) == sorted(keys)
        for index, members in enumerate(grouped):
            for key in members:
                assert pmap.index_for(key) == index


class TestLaneAssignment:
    """Lane routing = node routing × partition routing, stably."""

    @pytest.mark.parametrize("lanes", [1, 4, 8])
    def test_assignment_stable_and_node_preserving(self, lanes):
        n_nodes = 3
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "net"),
            n_nodes=n_nodes,
            instrument_enabled=False,
        )
        for ip in _ips(500):
            lane = (
                network.node_index_for(ip) * lanes
                + partition_index(ip, lanes)
            )
            # Stable across repeated evaluation...
            assert lane == (
                network.node_index_for(ip) * lanes
                + partition_index(ip, lanes)
            )
            # ...in range, and the node is recoverable from the lane
            # whatever the lane count.
            assert 0 <= lane < n_nodes * lanes
            assert lane // lanes == network.node_index_for(ip)

    def test_lane_equals_shard_at_matching_count(self):
        """At lanes == shards, an IP's lane-within-node IS its state
        shard — the containment property process lanes rely on."""
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "net"),
            n_nodes=2,
            instrument_enabled=False,
        )
        network.shard_detection(4)
        for ip in _ips(500):
            node = network.nodes[network.node_index_for(ip)]
            assert partition_index(ip, 4) == node.shard_index_for(ip)
            shard = node.shard_for(ip)
            assert shard.shard_id == partition_index(ip, 4)
