"""Partitioned store facades: routing, merged accounting, housekeeping
equivalence and pickle safety.

The eviction-equivalence tests are the regression guard for the PR 2
unbounded-state fixes: partitioning a store must never change *what*
housekeeping removes — every entry the unpartitioned sweep would evict
is evicted exactly once by the per-partition sweeps, and nothing else.
"""

from __future__ import annotations

import pickle

import pytest

from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url
from repro.instrument.keys import (
    BeaconKind,
    InstrumentationRegistry,
    RegisteredProbe,
)
from repro.proxy.cache import ProxyCache
from repro.proxy.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.state.stores import (
    PartitionedCache,
    PartitionedLimiter,
    PartitionedRegistry,
)

N_IPS = 10_000


def _ips(n=N_IPS):
    return [f"10.{i // 65536}.{(i // 256) % 256}.{i % 256}" for i in range(n)]


def _probe(client_ip, key, issued_at=0.0):
    return RegisteredProbe(
        kind=BeaconKind.CSS_BEACON,
        client_ip=client_ip,
        host="site.test",
        path=f"/probe-{key}.css",
        page_path="/page.html",
        issued_at=issued_at,
        key=key,
    )


def _request(client_ip, path="/a.css", timestamp=0.0):
    return Request(
        method=Method.GET,
        url=Url.parse(f"http://site.test{path}"),
        client_ip=client_ip,
        headers=Headers([("User-Agent", "UA")]),
        timestamp=timestamp,
    )


def _response():
    return Response(
        status=200,
        headers=Headers([("Content-Type", "text/css")]),
        body=b"body{}",
    )


class TestPartitionedRegistry:
    def test_routes_and_merges(self):
        registry = PartitionedRegistry.build(4, ttl=100.0, per_ip_cap=8)
        for i, ip in enumerate(_ips(64)):
            registry.register(_probe(ip, f"k{i}"))
        assert len(registry) == 64
        assert sum(len(p) for p in registry.partitions) == 64
        for ip in _ips(64):
            owner = registry.partition(registry.index_for(ip))
            assert registry.outstanding(ip) == owner.outstanding(ip)
        assert registry.ttl == 100.0
        assert registry.per_ip_cap == 8

    def test_listeners_fire_once_per_registration(self):
        registry = PartitionedRegistry.build(4)
        seen = []
        registry.add_listener(seen.append)
        assert registry.has_listeners
        for i, ip in enumerate(_ips(32)):
            registry.register(_probe(ip, f"k{i}"))
        assert len(seen) == 32
        registry.remove_listener(seen.append)
        assert not registry.has_listeners

    def test_migrate_preserves_probes_without_refiring(self):
        source = InstrumentationRegistry(ttl=50.0, per_ip_cap=8)
        journal = []
        source.add_listener(journal.append)
        for i in range(6):  # same IP: exercises per-IP FIFO order
            source.register(_probe("198.51.100.7", f"k{i}", issued_at=i))
        fired_before = len(journal)
        rebuilt = PartitionedRegistry.migrate(source, 8)
        assert len(journal) == fired_before  # load() never re-fires
        assert rebuilt.ttl == 50.0
        assert rebuilt.per_ip_cap == 8
        # FIFO order per IP survives the move (eviction order depends
        # on it).
        assert [p.key for p in rebuilt.outstanding("198.51.100.7")] == [
            p.key for p in source.outstanding("198.51.100.7")
        ]
        # The journal listener rides along into every partition.
        rebuilt.register(_probe("203.0.113.1", "fresh"))
        assert len(journal) == fired_before + 1

    def test_expiry_equivalent_to_unpartitioned(self):
        """Million-IP-style slice: partition-wise sweeps remove exactly
        the entries one big sweep would — none skipped, none double."""
        flat = InstrumentationRegistry(ttl=100.0)
        for i, ip in enumerate(_ips()):
            flat.register(_probe(ip, f"k{i}", issued_at=float(i % 500)))
        partitioned = PartitionedRegistry.migrate(flat, 16)
        assert len(partitioned) == len(flat)

        expected = flat.expire_before(now=350.0)
        removed = partitioned.expire_before(now=350.0)
        assert removed == expected
        assert len(partitioned) == len(flat)
        survivors = sorted(p.key for p in partitioned.iter_probes())
        assert survivors == sorted(p.key for p in flat.iter_probes())

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedRegistry([])


class TestPartitionedLimiter:
    CONFIG = RateLimitConfig(requests_per_second=1, burst=2)

    def test_partition_local_decisions(self):
        limiter = PartitionedLimiter(self.CONFIG, 4)
        ip = "192.0.2.50"
        assert limiter.allow(ip, 0.0)
        assert limiter.allow(ip, 0.0)
        assert not limiter.allow(ip, 0.0)  # burst exhausted
        owner = limiter.partition(limiter.index_for(ip))
        assert len(owner) == 1
        assert len(limiter) == 1
        assert limiter.allowed == 2
        assert limiter.denied == 1
        assert limiter.config is self.CONFIG

    def test_decisions_match_unpartitioned(self):
        flat = TokenBucketLimiter(self.CONFIG)
        partitioned = PartitionedLimiter(self.CONFIG, 8)
        for step in range(3):
            for ip in _ips(300):
                now = float(step)
                assert flat.allow(ip, now) == partitioned.allow(ip, now)
        assert flat.allowed == partitioned.allowed
        assert flat.denied == partitioned.denied

    def test_eviction_equivalent_to_unpartitioned(self):
        flat = TokenBucketLimiter(self.CONFIG)
        partitioned = PartitionedLimiter(self.CONFIG, 16)
        for i, ip in enumerate(_ips()):
            now = float(i % 700)
            flat.allow(ip, now)
            partitioned.allow(ip, now)
        assert len(partitioned) == len(flat)
        expected = flat.evict_replenished(now=900.0)
        removed = partitioned.evict_replenished(now=900.0)
        assert removed == expected
        assert len(partitioned) == len(flat)
        assert partitioned.evicted == flat.evicted


class TestPartitionedCache:
    def test_routes_by_client_ip(self):
        cache = PartitionedCache(4, capacity=64, ttl=100.0)
        request = _request("192.0.2.9")
        assert cache.lookup(request, now=0.0) is None
        assert cache.store(request, _response(), now=0.0)
        hit = cache.lookup(request, now=1.0)
        assert hit is not None and hit.served_from_cache
        owner = cache.partition(cache.index_for("192.0.2.9"))
        assert len(owner) == 1
        assert len(cache) == 1
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.insertions == 1

    def test_capacity_divides_across_partitions(self):
        cache = PartitionedCache(4, capacity=10)
        # Ceiling division, never below one entry per partition.
        assert all(p._capacity == 3 for p in cache.partitions)
        tiny = PartitionedCache(8, capacity=2)
        assert all(p._capacity == 1 for p in tiny.partitions)
        with pytest.raises(ValueError):
            PartitionedCache(4, capacity=0)

    def test_sweep_equivalent_to_unpartitioned(self):
        flat = ProxyCache(capacity=N_IPS, ttl=100.0)
        partitioned = PartitionedCache(16, capacity=N_IPS, ttl=100.0)
        for i, ip in enumerate(_ips(2000)):
            request = _request(ip, path=f"/obj{i}.css", timestamp=i % 300)
            flat.store(request, _response(), now=float(i % 300))
            partitioned.store(request, _response(), now=float(i % 300))
        assert len(partitioned) == len(flat)
        expected = flat.sweep(now=250.0)
        removed = partitioned.sweep(now=250.0)
        assert removed == expected
        assert len(partitioned) == len(flat)


class TestPickleSafety:
    """Everything that rides a LaneResult or ships to a process lane
    must round-trip through pickle with its state intact."""

    def test_partitioned_stores_round_trip(self):
        registry = PartitionedRegistry.build(4)
        for i, ip in enumerate(_ips(32)):
            registry.register(_probe(ip, f"k{i}"))
        limiter = PartitionedLimiter(RateLimitConfig(), 4)
        limiter.allow("192.0.2.1", 0.0)
        cache = PartitionedCache(4, capacity=16)
        cache.store(_request("192.0.2.1"), _response(), now=0.0)

        registry2 = pickle.loads(pickle.dumps(registry))
        assert len(registry2) == 32
        assert registry2.index_for("192.0.2.1") == registry.index_for(
            "192.0.2.1"
        )
        limiter2 = pickle.loads(pickle.dumps(limiter))
        assert limiter2.allowed == 1
        cache2 = pickle.loads(pickle.dumps(cache))
        assert len(cache2) == 1
        hit = cache2.lookup(_request("192.0.2.1"), now=1.0)
        assert hit is not None

    def test_node_and_shards_round_trip(self):
        from repro.proxy.node import ProxyNode
        from repro.util.rng import RngStream

        node = ProxyNode(
            node_id="n0",
            origins={},
            rng=RngStream(1, "pickle-test"),
            rate_limit=RateLimitConfig(),
            detection_shards=4,
        )
        node.handle(_request("192.0.2.77", path="/x.html"))
        clone = pickle.loads(pickle.dumps(node))
        assert clone.stats.requests == 1
        assert clone.n_state_shards == 4
        for shard in node.state_shards:
            revived = pickle.loads(pickle.dumps(shard))
            assert revived.shard_id == shard.shard_id
            assert revived.stats.requests == shard.stats.requests

    def test_lane_workers_round_trip(self):
        from repro.agents.base import SessionBudget
        from repro.captcha.service import CaptchaConfig
        from repro.ingress.workers import (
            ReplayLaneWorker,
            WorkloadLaneWorker,
        )
        from repro.proxy.node import ProxyNode
        from repro.util.rng import RngStream

        node = ProxyNode(
            node_id="n0",
            origins={},
            rng=RngStream(2, "pickle-test"),
            detection_shards=2,
        )
        for lane, state in enumerate(node.lane_states(2)):
            replay = ReplayLaneWorker(lane, state)
            assert pickle.loads(pickle.dumps(replay)).lane == lane
            workload = WorkloadLaneWorker(
                lane,
                state,
                budget=SessionBudget(),
                collect_features=False,
                housekeeping_interval=600.0,
                captcha_enabled=False,
                captcha_config=CaptchaConfig(),
                captcha_rng=RngStream(3, "captcha"),
            )
            assert pickle.loads(pickle.dumps(workload)).lane == lane
