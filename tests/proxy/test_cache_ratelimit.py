"""Tests for repro.proxy.cache and repro.proxy.ratelimit."""

from __future__ import annotations

import pytest

from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url
from repro.proxy.cache import ProxyCache
from repro.proxy.ratelimit import RateLimitConfig, TokenBucket, TokenBucketLimiter


def _request(path="/a.css", method=Method.GET):
    return Request(
        method=method,
        url=Url.parse(f"http://h.com{path}"),
        client_ip="1.1.1.1",
        headers=Headers(),
    )


def _response(ctype="text/css", status=200, uncacheable=False):
    headers = Headers([("Content-Type", ctype)])
    if uncacheable:
        headers.set("Cache-Control", "no-store")
    return Response(status=status, headers=headers, body=b"body")


class TestCache:
    def test_store_and_hit(self):
        cache = ProxyCache()
        assert cache.store(_request(), _response(), now=0.0)
        hit = cache.lookup(_request(), now=1.0)
        assert hit is not None
        assert hit.served_from_cache
        assert hit.body == b"body"

    def test_miss_before_store(self):
        cache = ProxyCache()
        assert cache.lookup(_request(), now=0.0) is None
        assert cache.stats.misses == 1

    def test_html_never_cached(self):
        cache = ProxyCache()
        assert not cache.store(
            _request("/p.html"), _response("text/html"), now=0.0
        )

    def test_uncacheable_header_respected(self):
        cache = ProxyCache()
        assert not cache.store(
            _request(), _response(uncacheable=True), now=0.0
        )

    def test_non_200_not_cached(self):
        cache = ProxyCache()
        assert not cache.store(_request(), _response(status=404), now=0.0)

    def test_non_get_not_cached(self):
        cache = ProxyCache()
        assert not cache.store(
            _request(method=Method.HEAD), _response(), now=0.0
        )
        assert cache.lookup(_request(method=Method.HEAD), now=0.0) is None

    def test_ttl_expiry(self):
        cache = ProxyCache(ttl=10.0)
        cache.store(_request(), _response(), now=0.0)
        assert cache.lookup(_request(), now=5.0) is not None
        assert cache.lookup(_request(), now=20.0) is None

    def test_lru_eviction(self):
        cache = ProxyCache(capacity=2)
        cache.store(_request("/a.css"), _response(), now=0.0)
        cache.store(_request("/b.css"), _response(), now=0.0)
        cache.lookup(_request("/a.css"), now=1.0)  # refresh a
        cache.store(_request("/c.css"), _response(), now=2.0)
        assert cache.lookup(_request("/a.css"), now=3.0) is not None
        assert cache.lookup(_request("/b.css"), now=3.0) is None
        assert cache.stats.evictions == 1

    def test_query_is_part_of_key(self):
        cache = ProxyCache()
        cache.store(_request("/i.jpg?v=1"), _response("image/jpeg"), now=0.0)
        assert cache.lookup(_request("/i.jpg?v=2"), now=0.0) is None

    def test_hit_rate(self):
        cache = ProxyCache()
        cache.store(_request(), _response(), now=0.0)
        cache.lookup(_request(), now=0.0)
        cache.lookup(_request("/other.css"), now=0.0)
        assert cache.stats.hit_rate == 0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProxyCache(capacity=0)
        with pytest.raises(ValueError):
            ProxyCache(ttl=0)


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(RateLimitConfig(requests_per_second=1, burst=3))
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)

    def test_refill(self):
        bucket = TokenBucket(RateLimitConfig(requests_per_second=2, burst=2))
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(1.0)  # 2 tokens refilled after 1s

    def test_capacity_capped(self):
        bucket = TokenBucket(RateLimitConfig(requests_per_second=10, burst=5))
        assert bucket.try_acquire(100.0)
        assert bucket.tokens <= 5

    def test_invalid_cost(self):
        bucket = TokenBucket(RateLimitConfig())
        with pytest.raises(ValueError):
            bucket.try_acquire(0.0, cost=0)


class TestLimiter:
    def test_per_ip_isolation(self):
        limiter = TokenBucketLimiter(
            RateLimitConfig(requests_per_second=1, burst=1)
        )
        assert limiter.allow("1.1.1.1", 0.0)
        assert not limiter.allow("1.1.1.1", 0.0)
        assert limiter.allow("2.2.2.2", 0.0)
        assert limiter.denied == 1
        assert limiter.allowed == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RateLimitConfig(requests_per_second=0)
        with pytest.raises(ValueError):
            RateLimitConfig(burst=0)
