"""Tests for repro.proxy.cache and repro.proxy.ratelimit."""

from __future__ import annotations

import pytest

from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url
from repro.proxy.cache import ProxyCache
from repro.proxy.ratelimit import RateLimitConfig, TokenBucket, TokenBucketLimiter


def _request(path="/a.css", method=Method.GET):
    return Request(
        method=method,
        url=Url.parse(f"http://h.com{path}"),
        client_ip="1.1.1.1",
        headers=Headers(),
    )


def _response(ctype="text/css", status=200, uncacheable=False):
    headers = Headers([("Content-Type", ctype)])
    if uncacheable:
        headers.set("Cache-Control", "no-store")
    return Response(status=status, headers=headers, body=b"body")


class TestCache:
    def test_store_and_hit(self):
        cache = ProxyCache()
        assert cache.store(_request(), _response(), now=0.0)
        hit = cache.lookup(_request(), now=1.0)
        assert hit is not None
        assert hit.served_from_cache
        assert hit.body == b"body"

    def test_miss_before_store(self):
        cache = ProxyCache()
        assert cache.lookup(_request(), now=0.0) is None
        assert cache.stats.misses == 1

    def test_html_never_cached(self):
        cache = ProxyCache()
        assert not cache.store(
            _request("/p.html"), _response("text/html"), now=0.0
        )

    def test_uncacheable_header_respected(self):
        cache = ProxyCache()
        assert not cache.store(
            _request(), _response(uncacheable=True), now=0.0
        )

    def test_non_200_not_cached(self):
        cache = ProxyCache()
        assert not cache.store(_request(), _response(status=404), now=0.0)

    def test_non_get_not_cached(self):
        cache = ProxyCache()
        assert not cache.store(
            _request(method=Method.HEAD), _response(), now=0.0
        )
        assert cache.lookup(_request(method=Method.HEAD), now=0.0) is None

    def test_ttl_expiry(self):
        cache = ProxyCache(ttl=10.0)
        cache.store(_request(), _response(), now=0.0)
        assert cache.lookup(_request(), now=5.0) is not None
        assert cache.lookup(_request(), now=20.0) is None

    def test_lru_eviction(self):
        cache = ProxyCache(capacity=2)
        cache.store(_request("/a.css"), _response(), now=0.0)
        cache.store(_request("/b.css"), _response(), now=0.0)
        cache.lookup(_request("/a.css"), now=1.0)  # refresh a
        cache.store(_request("/c.css"), _response(), now=2.0)
        assert cache.lookup(_request("/a.css"), now=3.0) is not None
        assert cache.lookup(_request("/b.css"), now=3.0) is None
        assert cache.stats.evictions == 1

    def test_query_is_part_of_key(self):
        cache = ProxyCache()
        cache.store(_request("/i.jpg?v=1"), _response("image/jpeg"), now=0.0)
        assert cache.lookup(_request("/i.jpg?v=2"), now=0.0) is None

    def test_hit_rate(self):
        cache = ProxyCache()
        cache.store(_request(), _response(), now=0.0)
        cache.lookup(_request(), now=0.0)
        cache.lookup(_request("/other.css"), now=0.0)
        assert cache.stats.hit_rate == 0.5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProxyCache(capacity=0)
        with pytest.raises(ValueError):
            ProxyCache(ttl=0)

    def test_non_get_lookup_counts_miss(self):
        # Regression: the early return for non-GET requests skipped the
        # miss counter, overstating hit_rate on POST-heavy workloads.
        cache = ProxyCache()
        cache.store(_request(), _response(), now=0.0)
        assert cache.lookup(_request(), now=0.0) is not None
        assert cache.lookup(_request(method=Method.POST), now=0.0) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lazy_expiry_counts_expired(self):
        cache = ProxyCache(ttl=10.0)
        cache.store(_request(), _response(), now=0.0)
        assert cache.lookup(_request(), now=20.0) is None
        assert cache.stats.expired == 1
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 0

    def test_sweep_removes_only_expired(self):
        cache = ProxyCache(ttl=10.0)
        cache.store(_request("/old.css"), _response(), now=0.0)
        cache.store(_request("/new.css"), _response(), now=15.0)
        assert cache.sweep(now=20.0) == 1
        assert len(cache) == 1
        assert cache.stats.expired == 1
        assert cache.lookup(_request("/new.css"), now=20.0) is not None

    def test_sweep_when_nothing_expired(self):
        cache = ProxyCache(ttl=10.0)
        cache.store(_request(), _response(), now=0.0)
        assert cache.sweep(now=5.0) == 0
        assert len(cache) == 1
        assert cache.stats.expired == 0


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(RateLimitConfig(requests_per_second=1, burst=3))
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)

    def test_refill(self):
        bucket = TokenBucket(RateLimitConfig(requests_per_second=2, burst=2))
        bucket.try_acquire(0.0)
        bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(1.0)  # 2 tokens refilled after 1s

    def test_capacity_capped(self):
        bucket = TokenBucket(RateLimitConfig(requests_per_second=10, burst=5))
        assert bucket.try_acquire(100.0)
        assert bucket.tokens <= 5

    def test_invalid_cost(self):
        bucket = TokenBucket(RateLimitConfig())
        with pytest.raises(ValueError):
            bucket.try_acquire(0.0, cost=0)

    def test_out_of_order_timestamp_never_rewinds_refill_clock(self):
        # Regression: a stale `now` (heap-merged multi-node traces
        # deliver them) used to rewind _updated_at, so the next in-order
        # request re-credited an already-credited refill window.
        bucket = TokenBucket(
            RateLimitConfig(requests_per_second=1, burst=1), now=0.0
        )
        assert bucket.try_acquire(10.0)  # drained at t=10
        assert not bucket.try_acquire(5.0)  # stale arrival: no refill
        # Only 0.5s really elapsed since the t=10 drain; with the rewind
        # bug this acquire saw 5.5s of refill and wrongly succeeded.
        assert not bucket.try_acquire(10.5)
        assert bucket.try_acquire(11.0)  # a full second elapsed: refilled

    def test_out_of_order_arrivals_cannot_mint_tokens(self):
        bucket = TokenBucket(
            RateLimitConfig(requests_per_second=1, burst=2), now=0.0
        )
        assert bucket.try_acquire(100.0)
        assert bucket.try_acquire(100.0)  # burst drained at t=100
        granted = sum(
            bucket.try_acquire(t) for t in (99.0, 98.0, 97.0, 100.0)
        )
        assert granted == 0

    def test_replenished(self):
        bucket = TokenBucket(
            RateLimitConfig(requests_per_second=1, burst=4), now=0.0
        )
        assert bucket.replenished(0.0)  # starts full
        bucket.try_acquire(0.0)  # 1-token deficit refills in 1s
        assert not bucket.replenished(0.5)
        assert bucket.replenished(1.0)


class TestLimiter:
    def test_per_ip_isolation(self):
        limiter = TokenBucketLimiter(
            RateLimitConfig(requests_per_second=1, burst=1)
        )
        assert limiter.allow("1.1.1.1", 0.0)
        assert not limiter.allow("1.1.1.1", 0.0)
        assert limiter.allow("2.2.2.2", 0.0)
        assert limiter.denied == 1
        assert limiter.allowed == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RateLimitConfig(requests_per_second=0)
        with pytest.raises(ValueError):
            RateLimitConfig(burst=0)

    def test_evicts_replenished_buckets(self):
        # Regression: one bucket per client IP lived forever, an
        # unbounded leak under replays with millions of distinct IPs.
        limiter = TokenBucketLimiter(
            RateLimitConfig(requests_per_second=1, burst=2)
        )
        for i in range(100):
            limiter.allow(f"10.0.0.{i}", 0.0)
        assert len(limiter) == 100
        evicted = limiter.evict_replenished(now=10.0)
        assert evicted == 100
        assert len(limiter) == 0
        assert limiter.evicted == 100

    def test_eviction_spares_still_draining_buckets(self):
        limiter = TokenBucketLimiter(
            RateLimitConfig(requests_per_second=1, burst=2)
        )
        limiter.allow("1.1.1.1", 0.0)  # 1-token deficit: full at t=1
        limiter.allow("2.2.2.2", 0.0)
        limiter.allow("2.2.2.2", 0.0)  # 2-token deficit: full at t=2
        assert limiter.evict_replenished(now=1.5) == 1
        assert len(limiter) == 1
        assert limiter.evict_replenished(now=2.0) == 1
        assert len(limiter) == 0

    def test_eviction_does_not_change_decisions(self):
        limiter = TokenBucketLimiter(
            RateLimitConfig(requests_per_second=1, burst=2)
        )
        limiter.allow("1.1.1.1", 0.0)
        limiter.evict_replenished(now=100.0)
        # A fresh lazily recreated bucket behaves like the replenished
        # one it replaced: full burst available, then denial.
        assert limiter.allow("1.1.1.1", 100.0)
        assert limiter.allow("1.1.1.1", 100.0)
        assert not limiter.allow("1.1.1.1", 100.0)

    def test_eviction_neutral_for_out_of_order_arrivals(self):
        # Drain at t=100, sweep at t=102 (the bucket is replenished and
        # evicted), then a stale t=99 record arrives.  The recreated
        # bucket starts at the limiter's high-water timestamp (102), so
        # the stale request sees exactly the full-burst state a
        # surviving bucket would have after the sweep's eager refresh —
        # and the refill clock cannot rewind to mint extra credit.
        limiter = TokenBucketLimiter(
            RateLimitConfig(requests_per_second=1, burst=2)
        )
        assert limiter.allow("1.1.1.1", 100.0)
        assert limiter.allow("1.1.1.1", 100.0)
        assert limiter.evict_replenished(now=102.0) == 1
        assert limiter.allow("1.1.1.1", 99.0)
        assert limiter.allow("1.1.1.1", 99.0)
        assert not limiter.allow("1.1.1.1", 99.0)
        # Refill accrues from the watermark (102), not the stale clock.
        assert not limiter.allow("1.1.1.1", 102.5)
        assert limiter.allow("1.1.1.1", 103.0)

    def test_sweep_eagerly_refreshes_survivors(self):
        # A kept bucket is advanced to sweep time, so post-sweep stale
        # arrivals see the same state whether or not their bucket was
        # evictable — eviction stays decision-neutral.
        limiter = TokenBucketLimiter(
            RateLimitConfig(requests_per_second=1, burst=4)
        )
        for _ in range(4):
            limiter.allow("1.1.1.1", 0.0)
        assert limiter.evict_replenished(now=2.0) == 0
        assert limiter.allow("1.1.1.1", 1.0)  # 2 tokens accrued by t=2
        assert limiter.allow("1.1.1.1", 1.0)
        assert not limiter.allow("1.1.1.1", 1.0)


class TestNodeHousekeeping:
    def test_housekeeping_sweeps_cache_and_limiter(self):
        from repro.proxy.node import ProxyNode
        from repro.util.rng import RngStream

        node = ProxyNode(
            node_id="n0",
            origins={},
            rng=RngStream(1, "housekeeping-test"),
            rate_limit=RateLimitConfig(),
        )
        request = _request()
        node.handle(request)  # creates this client's bucket
        node.cache.store(_request(), _response(), now=0.0)
        assert len(node.limiter) == 1
        assert len(node.cache) == 1
        node.housekeeping(now=1e9)
        assert len(node.limiter) == 0
        assert len(node.cache) == 0
