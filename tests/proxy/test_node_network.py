"""Tests for repro.proxy.node and repro.proxy.network."""

from __future__ import annotations

from repro.http.content import ContentKind
from repro.http.headers import Headers
from repro.http.message import Method, Request
from repro.http.uri import Url
from repro.instrument.keys import BeaconKind
from repro.proxy.ratelimit import RateLimitConfig


def _request(site, path, ip="10.0.0.5", ua="Mozilla/4.0 (MSIE)", t=0.0):
    return Request(
        method=Method.GET,
        url=Url.parse(f"http://{site.host}{path}"),
        client_ip=ip,
        headers=Headers([("User-Agent", ua)]),
        timestamp=t,
    )


class TestNodeServing:
    def test_html_is_instrumented_and_uncacheable(
        self, make_node, small_site
    ):
        node = make_node()
        resp = node.handle(_request(small_site, small_site.home_path))
        assert resp.status == 200
        assert resp.headers.is_uncacheable()
        assert b"onmousemove" in resp.body
        assert node.stats.pages_instrumented == 1
        assert node.stats.instrumentation_markup_bytes > 0

    def test_instrumentation_can_be_disabled(self, make_node, small_site):
        node = make_node(instrument_enabled=False)
        resp = node.handle(_request(small_site, small_site.home_path))
        assert b"onmousemove" not in resp.body
        assert node.stats.pages_instrumented == 0

    def test_beacon_served_locally(self, make_node, small_site):
        node = make_node()
        node.handle(_request(small_site, small_site.home_path))
        probes = node.detection.registry.outstanding("10.0.0.5")
        css = next(p for p in probes if p.kind is BeaconKind.CSS_BEACON)
        origin_before = node.stats.origin_requests
        resp = node.handle(_request(small_site, css.path, t=1.0))
        assert resp.status == 200
        assert resp.content_type == "text/css"
        assert node.stats.origin_requests == origin_before
        assert node.stats.beacon_requests == 1
        assert node.stats.beacon_bytes_served >= 0

    def test_static_objects_cached(self, make_node, small_site):
        node = make_node()
        css_path = next(p for p in small_site.resources if p.endswith(".css"))
        node.handle(_request(small_site, css_path))
        resp = node.handle(_request(small_site, css_path, t=1.0))
        assert resp.served_from_cache
        assert node.stats.cache_hits == 1

    def test_unknown_host_502(self, make_node):
        node = make_node()
        req = Request(
            method=Method.GET,
            url=Url.parse("http://unknown.example/x"),
            client_ip="10.0.0.5",
            headers=Headers([("User-Agent", "u")]),
        )
        assert node.handle(req).status == 502

    def test_rate_limit_503(self, make_node, small_site):
        node = make_node(
            rate_limit=RateLimitConfig(requests_per_second=1, burst=2)
        )
        node.handle(_request(small_site, small_site.home_path, t=0.0))
        node.handle(_request(small_site, small_site.home_path, t=0.0))
        resp = node.handle(_request(small_site, small_site.home_path, t=0.0))
        assert resp.status == 503
        assert node.stats.rate_limited == 1

    def test_policy_blocks_wrong_key_fetcher(self, make_node, small_site):
        node = make_node()
        node.handle(_request(small_site, small_site.home_path))
        probes = node.detection.registry.outstanding("10.0.0.5")
        decoy = next(
            p
            for p in probes
            if p.kind is BeaconKind.MOUSE_IMAGE and not p.is_real_key
        )
        node.handle(_request(small_site, decoy.path, t=1.0))
        # Session is now blocked: further requests answer 403.
        resp = node.handle(_request(small_site, small_site.home_path, t=2.0))
        assert resp.status == 403
        assert node.stats.policy_blocked >= 1

    def test_housekeeping_runs(self, make_node, small_site):
        node = make_node()
        node.handle(_request(small_site, small_site.home_path))
        node.housekeeping(now=100000.0)
        assert node.detection.tracker.live_count == 0
        assert len(node.detection.registry) == 0


class TestNetwork:
    def test_sticky_assignment(self, make_network):
        network = make_network(n_nodes=4)
        node = network.node_for("10.1.2.3")
        for _ in range(5):
            assert network.node_for("10.1.2.3") is node

    def test_different_ips_spread(self, make_network):
        network = make_network(n_nodes=4)
        nodes = {
            network.node_for(f"10.0.{i}.{j}").node_id
            for i in range(8)
            for j in range(8)
        }
        assert len(nodes) >= 2

    def test_handle_routes_and_aggregates(self, make_network, small_site):
        network = make_network(n_nodes=2)
        for i in range(6):
            network.handle(
                _request(small_site, small_site.home_path, ip=f"10.9.0.{i}")
            )
        stats = network.stats()
        assert stats.requests == 6
        assert stats.pages_instrumented == 6

    def test_finalize_collects_sessions(self, make_network, small_site):
        network = make_network(n_nodes=2)
        for i in range(12):
            network.handle(
                _request(small_site, small_site.home_path, ip="10.9.9.9",
                         t=float(i))
            )
        sessions = network.finalize_sessions()
        assert len(sessions) == 1
        assert sessions[0].request_count == 12

    def test_bandwidth_fractions(self, make_network, small_site):
        network = make_network(n_nodes=1)
        network.handle(_request(small_site, small_site.home_path))
        stats = network.stats()
        assert 0.0 <= stats.beacon_bandwidth_fraction <= 1.0
        assert stats.markup_bandwidth_fraction > 0.0
