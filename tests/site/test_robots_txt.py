"""Tests for repro.site.robots_txt."""

from __future__ import annotations

from repro.site.robots_txt import parse_robots_txt


SAMPLE = """
# comment
User-agent: *
Disallow: /cgi-bin/
Disallow: /private/

User-agent: googlebot
Disallow: /no-google/
"""


class TestParse:
    def test_wildcard_rules(self):
        robots = parse_robots_txt(SAMPLE)
        assert robots.disallowed_prefixes("SomeBot/1.0") == [
            "/cgi-bin/",
            "/private/",
        ]

    def test_specific_agent_overrides_wildcard(self):
        robots = parse_robots_txt(SAMPLE)
        assert robots.disallowed_prefixes("Googlebot/2.1") == ["/no-google/"]

    def test_allows(self):
        robots = parse_robots_txt(SAMPLE)
        assert robots.allows("AnyBot", "/page.html")
        assert not robots.allows("AnyBot", "/cgi-bin/search.cgi")
        assert robots.allows("Googlebot", "/cgi-bin/search.cgi")
        assert not robots.allows("Googlebot", "/no-google/x")

    def test_empty_disallow_means_allow_all(self):
        robots = parse_robots_txt("User-agent: *\nDisallow:\n")
        assert robots.allows("bot", "/anything")

    def test_unknown_directives_ignored(self):
        robots = parse_robots_txt(
            "User-agent: *\nCrawl-delay: 10\nDisallow: /x/\n"
        )
        assert robots.disallowed_prefixes("bot") == ["/x/"]

    def test_grouped_agents(self):
        text = "User-agent: a\nUser-agent: b\nDisallow: /shared/\n"
        robots = parse_robots_txt(text)
        assert not robots.allows("a", "/shared/x")
        assert not robots.allows("b", "/shared/x")

    def test_empty_input(self):
        robots = parse_robots_txt("")
        assert robots.allows("bot", "/")

    def test_disallow_before_agent_ignored(self):
        robots = parse_robots_txt("Disallow: /x/\n")
        assert robots.allows("bot", "/x/y")
