"""Tests for repro.site.page and repro.site.resources."""

from __future__ import annotations

import pytest

from repro.html.links import extract_references
from repro.site.page import PageSpec
from repro.site.resources import Resource, ResourceKind, synthetic_body


class TestPageSpec:
    def test_render_links_extractable(self):
        page = PageSpec(
            path="/a.html",
            title="A",
            links=["/b.html", "/c.html"],
            stylesheets=["/s.css"],
            scripts=["/j.js"],
            images=["/i.jpg"],
            cgi_links=["/cgi-bin/s.cgi?q=term1"],
        )
        refs = extract_references(page.render())
        assert set(refs.visible_links) == {
            "/b.html", "/c.html", "/cgi-bin/s.cgi?q=term1"
        }
        assert refs.stylesheets == ["/s.css"]
        assert refs.scripts == ["/j.js"]
        assert refs.images == ["/i.jpg"]

    def test_embedded_objects(self):
        page = PageSpec(
            path="/a.html", title="A",
            stylesheets=["/s.css"], scripts=["/j.js"], images=["/i.jpg"],
        )
        assert page.embedded_objects == ["/s.css", "/j.js", "/i.jpg"]

    def test_paragraph_count(self):
        page = PageSpec(path="/a.html", title="A", paragraphs=3)
        assert page.render().count("<p>") == 3

    def test_invalid_path(self):
        with pytest.raises(ValueError):
            PageSpec(path="a.html", title="A")

    def test_negative_paragraphs(self):
        with pytest.raises(ValueError):
            PageSpec(path="/a.html", title="A", paragraphs=-1)


class TestResource:
    def test_content_types(self):
        assert Resource("/a.css", ResourceKind.STYLESHEET).content_type == (
            "text/css"
        )
        assert Resource("/a.js", ResourceKind.SCRIPT).content_type == (
            "application/javascript"
        )

    def test_size(self):
        r = Resource("/a.css", ResourceKind.STYLESHEET, b"abc")
        assert r.size == 3

    def test_invalid_path(self):
        with pytest.raises(ValueError):
            Resource("a.css", ResourceKind.STYLESHEET)


class TestSyntheticBody:
    @pytest.mark.parametrize(
        "kind",
        [
            ResourceKind.STYLESHEET,
            ResourceKind.SCRIPT,
            ResourceKind.IMAGE,
            ResourceKind.AUDIO,
            ResourceKind.PAGE,
        ],
    )
    def test_size_respected(self, kind):
        body = synthetic_body(kind, 500)
        assert len(body) == 500

    def test_zero_size(self):
        assert synthetic_body(ResourceKind.IMAGE, 0) == b""

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            synthetic_body(ResourceKind.IMAGE, -1)
