"""Tests for repro.site.generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.site.generator import SiteConfig, SiteGenerator
from repro.util.rng import RngStream


def _generate(seed: int = 5, **overrides):
    config = SiteConfig(
        n_pages=overrides.pop("n_pages", 14),
        min_images=overrides.pop("min_images", 2),
        max_images=overrides.pop("max_images", 5),
        image_bytes=2000,
        page_paragraphs=1,
        **overrides,
    )
    return SiteGenerator(config).generate(RngStream(seed, "site"))


class TestGeneration:
    def test_page_count(self):
        site = _generate()
        assert len(site.pages) == 14

    def test_home_page_exists(self):
        site = _generate()
        assert site.home_path in site.pages

    def test_deterministic(self):
        a = _generate(seed=9)
        b = _generate(seed=9)
        assert a.page_paths == b.page_paths
        assert sorted(a.resources) == sorted(b.resources)
        assert a.pages[a.home_path].links == b.pages[b.home_path].links

    def test_different_seeds_differ(self):
        a = _generate(seed=1)
        b = _generate(seed=2)
        assert (
            a.pages[a.home_path].links != b.pages[b.home_path].links
            or sorted(a.resources) != sorted(b.resources)
        )

    def test_shared_resources_exist(self):
        site = _generate()
        assert site.resource("/favicon.ico") is not None
        assert site.resource("/robots.txt") is not None
        stylesheets = [p for p in site.resources if p.endswith(".css")]
        assert stylesheets

    def test_page_images_registered(self):
        site = _generate()
        for page in site.pages.values():
            for image in page.images:
                assert site.resource(image) is not None

    def test_all_links_point_to_pages(self):
        site = _generate()
        for page in site.pages.values():
            for link in page.links:
                assert link in site.pages

    def test_every_page_reachable_from_home(self):
        site = _generate()
        reachable = {site.home_path}
        frontier = [site.home_path]
        while frontier:
            current = frontier.pop()
            for target in site.pages[current].links:
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        assert reachable == set(site.pages)

    def test_cgi_endpoints(self):
        site = _generate()
        assert len(site.cgi_paths) == SiteConfig().n_cgi_endpoints

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SiteConfig(n_pages=0)
        with pytest.raises(ValueError):
            SiteConfig(min_links=9, max_links=3)
        with pytest.raises(ValueError):
            SiteConfig(min_images=9, max_images=3)


class TestRenderedPages:
    def test_render_contains_structure(self):
        site = _generate()
        html = site.pages[site.home_path].render()
        assert "<html>" in html and "</html>" in html
        assert "</head>" in html and "</body>" in html

    def test_render_includes_objects(self):
        site = _generate()
        page = site.pages[site.home_path]
        html = page.render()
        for stylesheet in page.stylesheets:
            assert stylesheet in html
        for image in page.images:
            assert image in html


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_pages=st.integers(min_value=1, max_value=30),
)
def test_property_reachability(seed, n_pages):
    site = _generate(seed=seed, n_pages=n_pages)
    reachable = {site.home_path}
    frontier = [site.home_path]
    while frontier:
        current = frontier.pop()
        for target in site.pages[current].links:
            if target in site.pages and target not in reachable:
                reachable.add(target)
                frontier.append(target)
    assert reachable == set(site.pages)
