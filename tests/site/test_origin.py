"""Tests for repro.site.origin."""

from __future__ import annotations

from repro.http.content import ContentKind
from repro.http.headers import Headers
from repro.http.message import Method, Request
from repro.http.uri import Url


def _request(site, path_and_query, method=Method.GET):
    return Request(
        method=method,
        url=Url.parse(f"http://{site.host}{path_and_query}"),
        client_ip="10.0.0.9",
        headers=Headers([("User-Agent", "t")]),
        timestamp=0.0,
    )


class TestPages:
    def test_page_served(self, small_origin, small_site):
        resp = small_origin.handle(_request(small_site, small_site.home_path))
        assert resp.status == 200
        assert resp.content_kind is ContentKind.HTML
        assert b"</html>" in resp.body

    def test_static_resource_served(self, small_origin, small_site):
        path = next(p for p in small_site.resources if p.endswith(".css"))
        resp = small_origin.handle(_request(small_site, path))
        assert resp.status == 200
        assert resp.content_type == "text/css"

    def test_favicon(self, small_origin, small_site):
        resp = small_origin.handle(_request(small_site, "/favicon.ico"))
        assert resp.status == 200
        assert resp.content_type == "image/x-icon"

    def test_robots_txt(self, small_origin, small_site):
        resp = small_origin.handle(_request(small_site, "/robots.txt"))
        assert resp.status == 200
        assert b"Disallow" in resp.body

    def test_unknown_path_404(self, small_origin, small_site):
        resp = small_origin.handle(_request(small_site, "/no/such/page.html"))
        assert resp.status == 404

    def test_vuln_probe_404(self, small_origin, small_site):
        resp = small_origin.handle(_request(small_site, "/phpmyadmin/index.php"))
        assert resp.status == 404

    def test_wrong_host_502(self, small_origin, small_site):
        req = Request(
            method=Method.GET,
            url=Url.parse("http://other.host/x"),
            client_ip="10.0.0.9",
        )
        assert small_origin.handle(req).status == 502


class TestHead:
    def test_head_empty_body_same_status(self, small_origin, small_site):
        get = small_origin.handle(_request(small_site, small_site.home_path))
        head = small_origin.handle(
            _request(small_site, small_site.home_path, method=Method.HEAD)
        )
        assert head.status == get.status
        assert head.body == b""
        assert head.content_type == get.content_type

    def test_head_on_missing_is_404(self, small_origin, small_site):
        head = small_origin.handle(
            _request(small_site, "/missing.html", method=Method.HEAD)
        )
        assert head.status == 404


class TestCgi:
    def test_interactive_query_redirects_sometimes(
        self, small_origin, small_site
    ):
        endpoint = small_site.cgi_paths[0]
        statuses = {
            small_origin.handle(
                _request(small_site, f"{endpoint}?q=term{i}")
            ).status
            for i in range(40)
        }
        assert 302 in statuses
        assert 200 in statuses

    def test_redirect_has_location_and_follows(self, small_origin, small_site):
        endpoint = small_site.cgi_paths[0]
        for i in range(60):
            resp = small_origin.handle(
                _request(small_site, f"{endpoint}?q=term{i}")
            )
            if resp.status == 302:
                location = resp.headers.get("Location")
                assert location
                follow = small_origin.handle(
                    _request(small_site, Url.parse(location).path_and_query)
                )
                assert follow.status == 200
                assert follow.content_kind is ContentKind.HTML
                return
        raise AssertionError("no redirect seen in 60 interactive queries")

    def test_machine_query_never_redirects(self, small_origin, small_site):
        endpoint = small_site.cgi_paths[0]
        for i in range(40):
            resp = small_origin.handle(
                _request(small_site, f"{endpoint}?q=ad{i}")
            )
            assert resp.status == 200

    def test_cgi_deterministic(self, small_origin, small_site):
        endpoint = small_site.cgi_paths[0]
        a = small_origin.handle(_request(small_site, f"{endpoint}?q=term7"))
        b = small_origin.handle(_request(small_site, f"{endpoint}?q=term7"))
        assert a.status == b.status

    def test_results_pages_link_into_site(self, small_origin, small_site):
        resp = small_origin.handle(
            _request(small_site, "/cgi-bin/results/r00042.html")
        )
        assert resp.status == 200
        body = resp.text
        assert any(path in body for path in small_site.page_paths)

    def test_post_is_cgi(self, small_origin, small_site):
        endpoint = small_site.cgi_paths[0]
        resp = small_origin.handle(
            _request(small_site, endpoint, method=Method.POST)
        )
        assert resp.status == 200
