"""Tests for the CAPTCHA subsystem."""

from __future__ import annotations

import pytest

from repro.captcha.challenge import (
    CaptchaChallenge,
    CaptchaOutcome,
    generate_challenge,
)
from repro.captcha.service import CaptchaConfig, CaptchaService
from repro.util.rng import RngStream


class TestChallenge:
    def test_solve_probability_monotone_in_skill(self):
        challenge = CaptchaChallenge("c1", difficulty=0.5)
        assert challenge.solve_probability(0.9) > challenge.solve_probability(
            0.2
        )

    def test_solve_probability_monotone_in_difficulty(self):
        easy = CaptchaChallenge("c1", difficulty=0.1)
        hard = CaptchaChallenge("c2", difficulty=0.9)
        assert easy.solve_probability(0.9) > hard.solve_probability(0.9)

    def test_bounds(self):
        challenge = CaptchaChallenge("c", difficulty=1.0)
        assert 0.0 <= challenge.solve_probability(0.0) <= 1.0
        assert 0.0 <= challenge.solve_probability(1.0) <= 1.0

    def test_invalid_difficulty(self):
        with pytest.raises(ValueError):
            CaptchaChallenge("c", difficulty=1.5)

    def test_invalid_skill(self):
        with pytest.raises(ValueError):
            CaptchaChallenge("c", difficulty=0.5).solve_probability(2.0)

    def test_generate_in_range(self, rng):
        for _ in range(20):
            challenge = generate_challenge(rng)
            assert 0.3 <= challenge.difficulty <= 0.8


class TestService:
    def test_human_funnel_rates(self):
        service = CaptchaService(
            CaptchaConfig(human_participation=0.5, human_skill=0.97)
        )
        rng = RngStream(5)
        outcomes = [
            service.run_for_session(rng.split(f"s{i}"), is_human=True)
            for i in range(2000)
        ]
        passed = sum(1 for o in outcomes if o is CaptchaOutcome.PASSED)
        declined = sum(1 for o in outcomes if o is CaptchaOutcome.DECLINED)
        assert 0.42 < passed / 2000 < 0.55  # ~participation × solve
        assert 0.42 < declined / 2000 < 0.58

    def test_robots_rarely_attempt(self):
        service = CaptchaService()
        rng = RngStream(6)
        outcomes = [
            service.run_for_session(rng.split(f"r{i}"), is_human=False)
            for i in range(2000)
        ]
        passed = sum(1 for o in outcomes if o is CaptchaOutcome.PASSED)
        assert passed / 2000 < 0.01

    def test_stats_consistent(self):
        service = CaptchaService()
        rng = RngStream(7)
        for i in range(300):
            service.run_for_session(rng.split(f"x{i}"), is_human=i % 3 == 0)
        stats = service.stats
        assert stats.offered == 300
        assert stats.declined + stats.attempted == 300
        assert stats.passed + stats.failed == stats.attempted

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CaptchaConfig(human_participation=1.5)
        with pytest.raises(ValueError):
            CaptchaConfig(max_attempts=0)
