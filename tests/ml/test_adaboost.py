"""Tests for repro.ml.adaboost."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.evaluate import accuracy


def _xor_data(n=200, seed=0):
    """XOR-ish data no single stump can fit: boosting must combine."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = np.where(x[:, 0] * x[:, 1] > 0, 1.0, -1.0)
    return x, y


class TestTraining:
    def test_separable_data_perfect(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([-1.0, -1.0, 1.0, 1.0])
        model = AdaBoostClassifier(n_rounds=5).fit(x, y)
        assert accuracy(model.predict(x), y) == 1.0

    def test_stops_early_on_perfect_stump(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([-1.0, -1.0, 1.0, 1.0])
        model = AdaBoostClassifier(n_rounds=100).fit(x, y)
        assert model.rounds < 100

    def test_boosting_beats_single_stump_on_xor(self):
        x, y = _xor_data()
        single = AdaBoostClassifier(n_rounds=1).fit(x, y)
        boosted = AdaBoostClassifier(n_rounds=100).fit(x, y)
        acc_single = accuracy(single.predict(x), y)
        acc_boosted = accuracy(boosted.predict(x), y)
        assert acc_boosted > acc_single + 0.15

    def test_training_accuracy_high_on_xor(self):
        # Axis-aligned stumps fight XOR; boosting still reaches well
        # above chance on the training set.
        x, y = _xor_data()
        model = AdaBoostClassifier(n_rounds=200).fit(x, y)
        assert accuracy(model.predict(x), y) > 0.8

    def test_alphas_positive(self):
        x, y = _xor_data()
        model = AdaBoostClassifier(n_rounds=50).fit(x, y)
        assert all(alpha > 0 for alpha in model.alphas)

    def test_staged_scores_shape(self):
        x, y = _xor_data(n=60)
        model = AdaBoostClassifier(n_rounds=20).fit(x, y)
        staged = model.staged_scores(x)
        assert staged.shape == (model.rounds, 60)
        # The final staged margin equals score().
        assert np.allclose(staged[-1], model.score(x))

    def test_generalises_on_interval_concept(self):
        """An interval (|x0| > 0.5) needs two stumps combined — a concept
        boosting represents exactly, so it must generalise well."""

        def interval_data(seed):
            rng = np.random.default_rng(seed)
            x = rng.uniform(-1, 1, size=(300, 2))
            y = np.where(np.abs(x[:, 0]) > 0.5, 1.0, -1.0)
            return x, y

        x, y = interval_data(1)
        model = AdaBoostClassifier(n_rounds=100).fit(x, y)
        x_test, y_test = interval_data(2)
        assert accuracy(model.predict(x_test), y_test) > 0.95


class TestValidation:
    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier().fit(np.zeros((4, 1)), np.array([0, 1, 2, 3]))

    def test_rejects_one_class(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier().fit(
                np.zeros((4, 1)), np.array([1.0, 1.0, 1.0, 1.0])
            )

    def test_rejects_1d_x(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier().fit(np.zeros(4), np.array([1.0, -1.0, 1, -1]))

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_rounds=0)

    def test_score_validates_width(self):
        x, y = _xor_data(n=40)
        model = AdaBoostClassifier(n_rounds=5).fit(x, y)
        with pytest.raises(ValueError):
            model.score(np.zeros((3, 5)))


class TestDeterminism:
    def test_same_data_same_model(self):
        x, y = _xor_data()
        a = AdaBoostClassifier(n_rounds=30).fit(x, y)
        b = AdaBoostClassifier(n_rounds=30).fit(x, y)
        assert a.alphas == b.alphas
        assert [s.feature for s in a.stumps] == [s.feature for s in b.stumps]
