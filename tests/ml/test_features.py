"""Tests for repro.ml.features: Table 2's 12 attributes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.http.headers import Headers
from repro.http.message import Method, Request, Response
from repro.http.uri import Url
from repro.ml.features import ATTRIBUTE_NAMES, FeatureAccumulator

IDX = {name: i for i, name in enumerate(ATTRIBUTE_NAMES)}


def _exchange(
    path="/a.html",
    method=Method.GET,
    referer=None,
    status=200,
    ctype="text/html",
    body=b"",
):
    headers = Headers()
    if referer:
        headers.set("Referer", referer)
    request = Request(
        method=method,
        url=Url.parse(f"http://h.com{path}"),
        client_ip="1.1.1.1",
        headers=headers,
    )
    response = Response(
        status=status,
        headers=Headers([("Content-Type", ctype)]),
        body=body,
    )
    return request, response


class TestCounts:
    def test_empty_vector_zero(self):
        acc = FeatureAccumulator()
        assert np.all(acc.vector() == 0)

    def test_head_pct(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange(method=Method.HEAD))
        acc.observe(*_exchange())
        assert acc.vector()[IDX["HEAD%"]] == 50.0

    def test_html_pct(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange("/a.html"))
        acc.observe(*_exchange("/i.jpg", ctype="image/jpeg"))
        assert acc.vector()[IDX["HTML%"]] == 50.0

    def test_image_pct_uses_response_type(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange("/x", ctype="image/gif"))
        acc.observe(*_exchange("/y.html"))
        assert acc.vector()[IDX["IMAGE%"]] == 50.0

    def test_cgi_pct(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange("/cgi-bin/s.cgi?q=1"))
        acc.observe(*_exchange())
        vec = acc.vector()
        assert vec[IDX["CGI%"]] == 50.0
        assert vec[IDX["HTML%"]] == 50.0  # CGI is not counted as HTML

    def test_favicon_pct(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange("/favicon.ico", ctype="image/x-icon"))
        acc.observe(*_exchange())
        assert acc.vector()[IDX["FAVICON%"]] == 50.0

    def test_status_classes(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange(status=200))
        acc.observe(*_exchange(status=302))
        acc.observe(*_exchange(status=404))
        acc.observe(*_exchange(status=500))
        vec = acc.vector()
        assert vec[IDX["RESPCODE_2XX%"]] == 25.0
        assert vec[IDX["RESPCODE_3XX%"]] == 25.0
        assert vec[IDX["RESPCODE_4XX%"]] == 25.0


class TestReferrers:
    def test_referrer_pct(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange(referer="http://h.com/prev.html"))
        acc.observe(*_exchange())
        assert acc.vector()[IDX["REFERRER%"]] == 50.0

    def test_unseen_referrer(self):
        acc = FeatureAccumulator()
        # First request to /a.html; then a request claiming /a.html as
        # referrer (seen), then one claiming an alien page (unseen).
        acc.observe(*_exchange("/a.html"))
        acc.observe(*_exchange("/b.html", referer="http://h.com/a.html"))
        acc.observe(*_exchange("/c.html", referer="http://spam.example/x"))
        vec = acc.vector()
        assert vec[IDX["REFERRER%"]] == pytest.approx((2 / 3) * 100)
        assert vec[IDX["UNSEEN_REFERRER%"]] == pytest.approx((1 / 3) * 100)


class TestPageStructureTracking:
    PAGE = (
        b'<html><head><link rel="stylesheet" href="/s.css"></head>'
        b'<body><a href="/next.html">n</a><img src="/i.jpg"></body></html>'
    )

    def test_embedded_object_pct(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange("/a.html", body=self.PAGE))
        acc.observe(*_exchange("/s.css", ctype="text/css"))
        acc.observe(*_exchange("/i.jpg", ctype="image/jpeg"))
        acc.observe(*_exchange("/unrelated.css", ctype="text/css"))
        vec = acc.vector()
        assert vec[IDX["EMBEDDED_OBJ%"]] == 50.0

    def test_link_following_pct(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange("/a.html", body=self.PAGE))
        acc.observe(*_exchange("/next.html"))
        acc.observe(*_exchange("/random.html"))
        vec = acc.vector()
        assert abs(vec[IDX["LINK_FOLLOWING%"]] - (1 / 3) * 100) < 1e-9

    def test_objects_of_unfetched_pages_dont_count(self):
        acc = FeatureAccumulator()
        acc.observe(*_exchange("/s.css", ctype="text/css"))
        assert acc.vector()[IDX["EMBEDDED_OBJ%"]] == 0.0

    def test_tracking_bounded(self):
        acc = FeatureAccumulator(max_tracked_urls=2)
        body = (
            b'<html><body><a href="/1.html">1</a><a href="/2.html">2</a>'
            b'<a href="/3.html">3</a></body></html>'
        )
        acc.observe(*_exchange("/a.html", body=body))
        assert len(acc._known_links) <= 2


class TestVectorShape:
    def test_length_and_bounds(self):
        acc = FeatureAccumulator()
        for i in range(10):
            acc.observe(*_exchange(f"/p{i}.html"))
        vec = acc.vector()
        assert vec.shape == (len(ATTRIBUTE_NAMES),)
        assert np.all(vec >= 0.0)
        assert np.all(vec <= 100.0)
