"""Tests for repro.ml.evaluate, repro.ml.importance and repro.ml.dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.dataset import (
    Dataset,
    HUMAN,
    ROBOT,
    SessionExample,
    build_matrix,
)
from repro.ml.evaluate import accuracy, confusion, train_test_split
from repro.ml.features import ATTRIBUTE_NAMES, N_ATTRIBUTES
from repro.ml.importance import attribute_contributions, top_attributes
from repro.util.rng import RngStream


def _example(label, value, session_id="s", n=40):
    vec = np.full(N_ATTRIBUTES, float(value))
    return SessionExample(
        session_id=session_id,
        label=label,
        snapshots={20: vec},
        final=vec,
        request_count=n,
    )


class TestDataset:
    def test_at_prefers_snapshot(self):
        ex = _example(HUMAN, 1.0)
        ex.snapshots[20] = np.full(N_ATTRIBUTES, 5.0)
        assert ex.at(20)[0] == 5.0

    def test_at_falls_back_to_final(self):
        ex = _example(HUMAN, 2.0)
        assert ex.at(160)[0] == 2.0

    def test_at_raises_without_data(self):
        ex = SessionExample(session_id="s", label=HUMAN)
        with pytest.raises(KeyError):
            ex.at(20)

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            SessionExample(session_id="s", label=0)

    def test_class_balance(self):
        ds = Dataset(
            examples=[_example(HUMAN, 1), _example(ROBOT, 2), _example(ROBOT, 3)]
        )
        assert ds.class_balance() == (1, 2)

    def test_build_matrix(self):
        examples = [_example(HUMAN, 1.0), _example(ROBOT, 0.0)]
        x, y = build_matrix(examples, 20)
        assert x.shape == (2, N_ATTRIBUTES)
        assert list(y) == [1.0, -1.0]

    def test_build_matrix_empty(self):
        x, y = build_matrix([], 20)
        assert x.shape == (0, N_ATTRIBUTES)


class TestSplit:
    def test_per_class_even(self):
        examples = [
            _example(HUMAN, i, session_id=f"h{i}") for i in range(10)
        ] + [_example(ROBOT, i, session_id=f"r{i}") for i in range(30)]
        train, test = train_test_split(examples, RngStream(1))
        assert len(train) + len(test) == 40
        train_humans = sum(1 for e in train if e.label == HUMAN)
        test_humans = sum(1 for e in test if e.label == HUMAN)
        assert train_humans == 5
        assert test_humans == 5

    def test_deterministic(self):
        examples = [
            _example(HUMAN, i, session_id=f"e{i}") for i in range(8)
        ] + [_example(ROBOT, i, session_id=f"r{i}") for i in range(8)]
        a_train, _ = train_test_split(examples, RngStream(3))
        b_train, _ = train_test_split(examples, RngStream(3))
        assert [e.session_id for e in a_train] == [
            e.session_id for e in b_train
        ]


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, -1, 1]), np.array([1, 1, 1])) == (
            pytest.approx(2 / 3)
        )

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, -1]))

    def test_confusion(self):
        pred = np.array([1, 1, -1, -1])
        true = np.array([1, -1, -1, 1])
        c = confusion(pred, true)
        assert (c.true_human, c.false_human, c.true_robot, c.false_robot) == (
            1, 1, 1, 1
        )
        assert c.accuracy == 0.5
        assert c.false_positive_rate == 0.5
        assert c.false_negative_rate == 0.5


class TestImportance:
    def test_contributions_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(100, N_ATTRIBUTES))
        y = np.where(x[:, 3] > 0, 1.0, -1.0)
        model = AdaBoostClassifier(n_rounds=20).fit(x, y)
        contributions = attribute_contributions(model)
        assert sum(w for _, w in contributions) == pytest.approx(1.0)

    def test_informative_attribute_ranks_first(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, N_ATTRIBUTES))
        y = np.where(x[:, 9] > 0.1, 1.0, -1.0)  # RESPCODE_3XX% column
        model = AdaBoostClassifier(n_rounds=30).fit(x, y)
        assert top_attributes(model, 1) == [ATTRIBUTE_NAMES[9]]

    def test_top_k_validation(self):
        x = np.random.default_rng(0).normal(size=(50, N_ATTRIBUTES))
        y = np.where(x[:, 0] > 0, 1.0, -1.0)
        model = AdaBoostClassifier(n_rounds=5).fit(x, y)
        with pytest.raises(ValueError):
            top_attributes(model, 0)
