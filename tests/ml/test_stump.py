"""Tests for repro.ml.stump."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.stump import DecisionStump, train_stump


def _brute_force_best_error(x, y, w):
    """Exhaustive stump search for cross-checking the vectorised trainer."""
    n, d = x.shape
    best = np.inf
    for feature in range(d):
        values = np.unique(x[:, feature])
        candidates = [values[0] - 1.0]
        candidates += [
            (values[i] + values[i + 1]) / 2 for i in range(len(values) - 1)
        ]
        for threshold in candidates:
            for polarity in (1, -1):
                pred = np.where(x[:, feature] > threshold, polarity, -polarity)
                err = float(np.sum(w[pred != y]))
                best = min(best, err)
    return best


class TestPredict:
    def test_polarity_positive(self):
        stump = DecisionStump(feature=0, threshold=0.5, polarity=1)
        x = np.array([[0.0], [1.0]])
        assert list(stump.predict(x)) == [-1, 1]

    def test_polarity_negative(self):
        stump = DecisionStump(feature=0, threshold=0.5, polarity=-1)
        x = np.array([[0.0], [1.0]])
        assert list(stump.predict(x)) == [1, -1]

    def test_invalid_polarity(self):
        with pytest.raises(ValueError):
            DecisionStump(feature=0, threshold=0.0, polarity=0)


class TestTrain:
    def test_perfectly_separable(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([-1.0, -1.0, 1.0, 1.0])
        w = np.full(4, 0.25)
        stump, error = train_stump(x, y, w)
        assert error == pytest.approx(0.0)
        assert np.all(stump.predict(x) == y)

    def test_picks_informative_feature(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=(100, 1))
        signal = np.concatenate([np.zeros(50), np.ones(50)])[:, None]
        x = np.hstack([noise, signal])
        y = np.concatenate([-np.ones(50), np.ones(50)])
        w = np.full(100, 0.01)
        stump, error = train_stump(x, y, w)
        assert stump.feature == 1
        assert error == pytest.approx(0.0)

    def test_weights_steer_choice(self):
        # One feature, three points, no perfect stump: the reported error
        # is the weight of whichever point the best split sacrifices, so
        # shifting the weights changes both the error and the split.
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1.0, -1.0, 1.0])
        _, heavy_middle = train_stump(x, y, np.array([0.1, 0.8, 0.1]))
        assert heavy_middle == pytest.approx(0.1)
        _, heavy_left = train_stump(x, y, np.array([0.8, 0.1, 0.1]))
        assert heavy_left == pytest.approx(0.1)
        _, uniform = train_stump(x, y, np.full(3, 1 / 3))
        assert uniform == pytest.approx(1 / 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            train_stump(
                np.zeros((3, 2)), np.zeros(4), np.zeros(3)
            )

    def test_matches_brute_force(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            x = rng.normal(size=(24, 3))
            y = rng.choice([-1.0, 1.0], size=24)
            w = rng.random(24)
            w /= w.sum()
            _, error = train_stump(x, y, w)
            assert error == pytest.approx(
                _brute_force_best_error(x, y, w), abs=1e-9
            )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=4, max_value=40),
)
def test_property_error_at_most_half(seed, n):
    """The best stump is never worse than random guessing."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = rng.choice([-1.0, 1.0], size=n)
    if len(np.unique(y)) < 2:
        y[0] = -y[0]
    w = rng.random(n)
    w /= w.sum()
    _, error = train_stump(x, y, w)
    assert error <= 0.5 + 1e-9
