"""Tests for vectorized AdaBoost scoring and repro.ml.batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.adaboost import AdaBoostClassifier, AdaBoostModel
from repro.ml.batch import BatchScorer, BatchVerdict
from repro.ml.stump import DecisionStump


def _synthetic_model(
    rounds: int = 50, n_features: int = 12, seed: int = 7
) -> AdaBoostModel:
    rng = np.random.default_rng(seed)
    model = AdaBoostModel(n_features=n_features)
    for _ in range(rounds):
        model.stumps.append(
            DecisionStump(
                feature=int(rng.integers(n_features)),
                threshold=float(rng.uniform(0, 100)),
                polarity=int(rng.choice((-1, 1))),
            )
        )
        model.alphas.append(float(rng.uniform(0.05, 1.5)))
    return model


def _trained_model(seed: int = 3) -> tuple[AdaBoostModel, np.ndarray]:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 100, size=(300, 12))
    y = np.where(x[:, 0] + 0.5 * x[:, 3] > 80.0, 1.0, -1.0)
    if len(np.unique(y)) < 2:  # pragma: no cover - seed guard
        y[0] = -y[0]
    model = AdaBoostClassifier(n_rounds=60).fit(x, y)
    return model, x


class TestVectorizedScoring:
    def test_matches_loop_on_synthetic_ensemble(self):
        model = _synthetic_model(rounds=200)
        x = np.random.default_rng(11).uniform(0, 100, size=(500, 12))
        np.testing.assert_allclose(
            model.score(x), model.score_loop(x), rtol=0, atol=1e-9
        )

    def test_matches_loop_on_trained_model(self):
        model, x = _trained_model()
        np.testing.assert_allclose(
            model.score(x), model.score_loop(x), rtol=0, atol=1e-9
        )

    def test_predictions_match_loop_sign(self):
        model, x = _trained_model()
        loop_margins = model.score_loop(x)
        # Avoid knife-edge comparisons: only assert where the loop
        # margin is clearly signed.
        decisive = np.abs(loop_margins) > 1e-9
        expected = np.where(loop_margins > 0.0, 1, -1)
        assert (model.predict(x)[decisive] == expected[decisive]).all()

    def test_staged_scores_match_loop_accumulation(self):
        model = _synthetic_model(rounds=40)
        x = np.random.default_rng(23).uniform(0, 100, size=(64, 12))
        staged = model.staged_scores(x)
        assert staged.shape == (40, 64)
        running = np.zeros(64)
        for t, (stump, alpha) in enumerate(zip(model.stumps, model.alphas)):
            running = running + alpha * stump.predict(x)
            np.testing.assert_allclose(staged[t], running, atol=1e-9)
        np.testing.assert_allclose(staged[-1], model.score(x), atol=1e-9)

    def test_zero_margin_tie_breaks_to_robot(self):
        # Two stumps with equal votes and opposite polarity cancel
        # exactly: margin == 0.0 for every sample, and a tie must be
        # classified robot (-1), the paper's safe default.
        model = AdaBoostModel(n_features=2)
        model.stumps = [
            DecisionStump(feature=0, threshold=5.0, polarity=1),
            DecisionStump(feature=0, threshold=5.0, polarity=-1),
        ]
        model.alphas = [0.75, 0.75]
        x = np.array([[1.0, 0.0], [9.0, 0.0]])
        np.testing.assert_array_equal(model.score(x), [0.0, 0.0])
        np.testing.assert_array_equal(model.score_loop(x), [0.0, 0.0])
        assert (model.predict(x) == -1).all()

    def test_empty_model_scores_zero_and_predicts_robot(self):
        model = AdaBoostModel(n_features=3)
        x = np.zeros((4, 3))
        np.testing.assert_array_equal(model.score(x), np.zeros(4))
        assert (model.predict(x) == -1).all()
        assert model.staged_scores(x).shape == (0, 4)

    def test_packed_cache_refreshes_after_fit_style_append(self):
        model = _synthetic_model(rounds=5)
        x = np.random.default_rng(2).uniform(0, 100, size=(16, 12))
        before = model.score(x)
        model.stumps.append(
            DecisionStump(feature=1, threshold=50.0, polarity=1)
        )
        model.alphas.append(2.0)
        after = model.score(x)
        assert model.compile().rounds == 6
        np.testing.assert_allclose(after, model.score_loop(x), atol=1e-9)
        assert not np.allclose(before, after)

    def test_shape_validation(self):
        model = _synthetic_model(rounds=3)
        with pytest.raises(ValueError):
            model.score(np.zeros((4, 5)))
        with pytest.raises(ValueError):
            model.staged_scores(np.zeros((4, 5)))
        with pytest.raises(ValueError):
            model.score_loop(np.zeros(12))


class TestBatchScorer:
    def test_flush_matches_model_predict(self):
        model, x = _trained_model()
        scorer = BatchScorer(model)
        for row_index in range(20):
            scorer.add(f"sess-{row_index}", x[row_index])
        batch = scorer.flush()
        assert [v.session_id for v in batch] == [
            f"sess-{i}" for i in range(20)
        ]
        margins = model.score(x[:20])
        labels = model.predict(x[:20])
        for verdict, margin, label in zip(batch, margins, labels):
            assert verdict.margin == pytest.approx(float(margin))
            assert verdict.label == int(label)

    def test_auto_flush_at_batch_size(self):
        model = _synthetic_model(rounds=4)
        flushed: list[list[BatchVerdict]] = []
        scorer = BatchScorer(model, batch_size=8, on_flush=flushed.append)
        rng = np.random.default_rng(5)
        for row_index in range(20):
            scorer.add(f"s{row_index}", rng.uniform(0, 100, size=12))
        assert scorer.flushes == 2
        assert [len(batch) for batch in flushed] == [8, 8]
        assert scorer.pending == 4
        scorer.flush()
        assert scorer.scored == 20
        assert scorer.pending == 0

    def test_keep_verdicts_false_streams_without_retaining(self):
        model = _synthetic_model(rounds=2)
        streamed: list[BatchVerdict] = []
        scorer = BatchScorer(
            model,
            batch_size=4,
            on_flush=streamed.extend,
            keep_verdicts=False,
        )
        rng = np.random.default_rng(1)
        for row_index in range(10):
            scorer.add(f"s{row_index}", rng.uniform(0, 100, size=12))
        scorer.flush()
        assert scorer.verdicts == []
        assert scorer.scored == 10
        assert len(streamed) == 10

    def test_flush_empty_is_noop(self):
        scorer = BatchScorer(_synthetic_model(rounds=2))
        assert scorer.flush() == []
        assert scorer.flushes == 0

    def test_zero_margin_is_robot(self):
        verdict = BatchVerdict(session_id="s", margin=0.0)
        assert verdict.label == -1
        assert verdict.is_robot

    def test_add_many_and_accumulator(self):
        from repro.ml.features import FeatureAccumulator

        model = _synthetic_model(rounds=2)
        scorer = BatchScorer(model)
        scorer.add_many(
            (f"s{i}", np.full(12, float(i))) for i in range(3)
        )
        scorer.add_accumulator("acc", FeatureAccumulator())
        assert scorer.pending == 4
        assert len(scorer.flush()) == 4

    def test_rejects_wrong_width_and_bad_batch_size(self):
        model = _synthetic_model(rounds=2)
        scorer = BatchScorer(model)
        with pytest.raises(ValueError):
            scorer.add("s", np.zeros(5))
        with pytest.raises(ValueError):
            BatchScorer(model, batch_size=0)
