"""Edge-case tests across modules: validation paths and small utilities
not covered by the behavioural suites."""

from __future__ import annotations

import pytest

from repro.agents.base import FetchAction, SessionBudget
from repro.detection.set_algebra import SetAlgebraSummary
from repro.http.headers import Headers
from repro.http.message import Exchange, Method, Request, Response
from repro.http.uri import Url
from repro.proxy.network import NetworkStats
from repro.proxy.node import NodeStats
from repro.workload.codeen import CaptchaCrossCheck, CodeenWeekConfig


class TestFetchActionAndBudget:
    def test_negative_think_time_rejected(self):
        with pytest.raises(ValueError):
            FetchAction("http://h.com/", think_time=-1.0)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            SessionBudget(max_requests=0)
        with pytest.raises(ValueError):
            SessionBudget(max_duration=0.0)

    def test_defaults_sane(self):
        budget = SessionBudget()
        assert budget.max_requests >= 100
        assert budget.max_duration > 60


class TestExchange:
    def test_timestamp_from_request(self):
        request = Request(
            method=Method.GET,
            url=Url.parse("http://h.com/a"),
            client_ip="1.1.1.1",
            headers=Headers(),
            timestamp=42.0,
        )
        exchange = Exchange(request=request, response=Response(status=200))
        assert exchange.timestamp == 42.0


class TestStatsAggregation:
    def test_network_absorbs_node(self):
        node = NodeStats(
            requests=10,
            beacon_requests=2,
            bytes_served=1000,
            beacon_bytes_served=50,
            instrumentation_markup_bytes=30,
            pages_instrumented=3,
        )
        total = NetworkStats()
        total.absorb(node)
        total.absorb(node)
        assert total.requests == 20
        assert total.beacon_bytes_served == 100
        assert total.beacon_bandwidth_fraction == pytest.approx(0.05)
        assert total.markup_bandwidth_fraction == pytest.approx(0.03)

    def test_empty_fractions_zero(self):
        assert NetworkStats().beacon_bandwidth_fraction == 0.0
        assert NodeStats().beacon_bandwidth_fraction == 0.0


class TestSetAlgebraEdgeValues:
    def test_zero_sessions(self):
        summary = SetAlgebraSummary(
            total_sessions=0, css_downloads=0, js_executions=0,
            mouse_movements=0, captcha_passes=0, hidden_link_follows=0,
            ua_mismatches=0, human_upper_count=0,
        )
        assert summary.lower_bound == 0.0
        assert summary.max_false_positive_rate == 0.0

    def test_all_mouse_sessions(self):
        summary = SetAlgebraSummary(
            total_sessions=10, css_downloads=10, js_executions=10,
            mouse_movements=10, captcha_passes=0, hidden_link_follows=0,
            ua_mismatches=0, human_upper_count=10,
        )
        # Denominator (1 - lower) collapses to zero: defined as 0 FPR.
        assert summary.max_false_positive_rate == 0.0


class TestCodeenConfig:
    def test_invalid_sessions(self):
        with pytest.raises(ValueError):
            CodeenWeekConfig(n_sessions=0)

    def test_cross_check_empty(self):
        check = CaptchaCrossCheck(
            passers=0, passers_with_js=0, passers_with_css=0
        )
        assert check.js_fraction == 0.0
        assert check.js_disabled_fraction == 0.0

    def test_cross_check_fractions(self):
        check = CaptchaCrossCheck(
            passers=100, passers_with_js=96, passers_with_css=99
        )
        assert check.js_fraction == pytest.approx(0.96)
        assert check.js_disabled_fraction == pytest.approx(0.03)
