"""Shared fixtures.

Heavy artifacts (a generated site, a medium CoDeeN-week run, an ML
dataset) are session-scoped so the whole suite pays for them once.
Tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.detection.service import DetectionService
from repro.instrument.keys import InstrumentationRegistry
from repro.instrument.rewriter import InstrumentConfig, PageInstrumenter
from repro.proxy.network import ProxyNetwork
from repro.proxy.node import ProxyNode
from repro.site.generator import SiteConfig, SiteGenerator, Website
from repro.site.origin import OriginServer
from repro.util.rng import RngStream
from repro.workload.codeen import CodeenWeekConfig, CodeenWeekExperiment

SMALL_SITE_CONFIG = SiteConfig(
    n_pages=14,
    min_images=3,
    max_images=6,
    image_bytes=4000,
    page_paragraphs=2,
)


@pytest.fixture(scope="session")
def small_site() -> Website:
    """A small deterministic site shared across tests (read-only)."""
    return SiteGenerator(SMALL_SITE_CONFIG).generate(RngStream(5, "site"))


@pytest.fixture(scope="session")
def small_origin(small_site: Website) -> OriginServer:
    """Origin server for the small site (stateless)."""
    return OriginServer(small_site)


@pytest.fixture()
def rng() -> RngStream:
    """A fresh deterministic stream per test."""
    return RngStream(1234, "test")


@pytest.fixture()
def registry() -> InstrumentationRegistry:
    """A fresh probe registry per test."""
    return InstrumentationRegistry()


@pytest.fixture()
def instrumenter(registry: InstrumentationRegistry, rng: RngStream) -> PageInstrumenter:
    """A fresh instrumenter per test."""
    return PageInstrumenter(registry, rng.split("instr"), InstrumentConfig())


@pytest.fixture()
def make_node(small_origin: OriginServer, small_site: Website):
    """Factory building fresh single proxy nodes against the small site."""

    def build(**kwargs) -> ProxyNode:
        return ProxyNode(
            node_id="node-test",
            origins={small_site.host: small_origin},
            rng=RngStream(kwargs.pop("seed", 77), "node"),
            **kwargs,
        )

    return build


@pytest.fixture()
def make_network(small_origin: OriginServer, small_site: Website):
    """Factory building fresh proxy networks against the small site."""

    def build(n_nodes: int = 2, seed: int = 88, **kwargs) -> ProxyNetwork:
        return ProxyNetwork(
            origins={small_site.host: small_origin},
            rng=RngStream(seed, "net"),
            n_nodes=n_nodes,
            **kwargs,
        )

    return build


@pytest.fixture()
def entry_url(small_site: Website) -> str:
    """The small site's home URL."""
    return f"http://{small_site.host}{small_site.home_path}"


@pytest.fixture(scope="session")
def codeen_result():
    """A medium CoDeeN-week run shared by the integration tests."""
    experiment = CodeenWeekExperiment(
        CodeenWeekConfig(n_sessions=400, seed=2006)
    )
    return experiment.run()


@pytest.fixture(scope="session")
def ml_dataset():
    """A small ML dataset shared by the §4.2 tests."""
    from repro.experiments.figure4 import build_ml_dataset

    return build_ml_dataset(n_sessions=260, seed=99)
