"""Tests for repro.serve.http11: byte-level framing."""

from __future__ import annotations

import asyncio

import pytest

from repro.http.headers import Headers
from repro.http.message import Method, Response, error_response, html_response
from repro.serve.http11 import (
    Http11Limits,
    HttpParseError,
    read_request,
    read_response,
    render_response,
)


def parse(data: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


def refuse(data: bytes, **kwargs) -> HttpParseError:
    with pytest.raises(HttpParseError) as excinfo:
        parse(data, **kwargs)
    return excinfo.value


class TestRequestLine:
    def test_origin_form_with_host(self):
        parsed = parse(
            b"GET /a.html HTTP/1.1\r\nHost: www.example.com\r\n\r\n"
        )
        assert parsed.method is Method.GET
        assert parsed.url.host == "www.example.com"
        assert parsed.url.path == "/a.html"
        assert parsed.keep_alive

    def test_absolute_form(self):
        parsed = parse(
            b"GET http://www.example.com/x?a=1 HTTP/1.1\r\n\r\n"
        )
        assert parsed.url.host == "www.example.com"
        assert parsed.url.path == "/x"
        assert parsed.url.query == "a=1"

    def test_origin_form_with_default_host(self):
        parsed = parse(
            b"GET / HTTP/1.1\r\n\r\n", default_host="fallback.example"
        )
        assert parsed.url.host == "fallback.example"

    def test_origin_form_without_any_host_is_400(self):
        exc = refuse(b"GET / HTTP/1.1\r\n\r\n")
        assert exc.status == 400

    def test_query_embedded_absolute_url_routes_by_host_header(self):
        # The wire-level face of the resolve_url substring bug: an
        # origin-form target whose query embeds an absolute URL must
        # stay on the request's own host.
        parsed = parse(
            b"GET /redirect?to=http://evil.example/ HTTP/1.1\r\n"
            b"Host: www.example.com\r\n\r\n"
        )
        assert parsed.url.host == "www.example.com"
        assert parsed.url.path == "/redirect"
        assert parsed.url.query == "to=http://evil.example/"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_stray_blank_line_between_requests_tolerated(self):
        parsed = parse(
            b"\r\nGET /a HTTP/1.1\r\nHost: h.example\r\n\r\n"
        )
        assert parsed.url.path == "/a"

    def test_malformed_request_line_is_400(self):
        assert refuse(b"garbage\r\n\r\n").status == 400

    def test_two_part_request_line_is_400(self):
        assert refuse(b"GET /a\r\n\r\n").status == 400

    def test_unknown_method_is_501(self):
        exc = refuse(b"DELETE /a HTTP/1.1\r\nHost: h\r\n\r\n")
        assert exc.status == 501

    def test_unsupported_version_is_505(self):
        exc = refuse(b"GET /a HTTP/9.9\r\nHost: h\r\n\r\n")
        assert exc.status == 505

    def test_oversized_request_line_is_431(self):
        line = b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n"
        assert refuse(line).status == 431

    def test_bad_target_is_400(self):
        exc = refuse(b"GET <script>x</script> HTTP/1.1\r\nHost: h\r\n\r\n")
        assert exc.status == 400

    def test_partial_request_line_at_eof_is_400(self):
        assert refuse(b"GET /a HT").status == 400


class TestHeaders:
    def test_header_values_parsed(self):
        parsed = parse(
            b"GET /a HTTP/1.1\r\nHost: h.example\r\n"
            b"User-Agent: UA/1.0\r\nReferer: http://h.example/\r\n\r\n"
        )
        assert parsed.headers.get("User-Agent") == "UA/1.0"
        assert parsed.headers.get("Referer") == "http://h.example/"

    def test_framing_headers_stripped_from_pipeline_view(self):
        parsed = parse(
            b"GET /a HTTP/1.1\r\nHost: h.example\r\n"
            b"Connection: keep-alive\r\nUser-Agent: UA\r\n\r\n"
        )
        assert "Host" not in parsed.headers
        assert "Connection" not in parsed.headers
        assert parsed.raw_headers.get("Host") == "h.example"
        assert parsed.raw_headers.get("Connection") == "keep-alive"

    def test_too_many_headers_is_431(self):
        fields = b"".join(
            b"X-F%d: v\r\n" % index for index in range(200)
        )
        exc = refuse(b"GET /a HTTP/1.1\r\nHost: h\r\n" + fields + b"\r\n")
        assert exc.status == 431

    def test_oversized_header_block_is_431(self):
        fields = b"".join(
            b"X-F%d: %s\r\n" % (index, b"v" * 1000)
            for index in range(40)
        )
        exc = refuse(b"GET /a HTTP/1.1\r\nHost: h\r\n" + fields + b"\r\n")
        assert exc.status == 431

    def test_folded_header_is_400(self):
        exc = refuse(
            b"GET /a HTTP/1.1\r\nHost: h\r\nX-A: 1\r\n folded\r\n\r\n"
        )
        assert exc.status == 400

    def test_header_without_colon_is_400(self):
        exc = refuse(b"GET /a HTTP/1.1\r\nHost: h\r\nnocolon\r\n\r\n")
        assert exc.status == 400

    def test_eof_inside_headers_is_400(self):
        assert refuse(b"GET /a HTTP/1.1\r\nHost: h\r\n").status == 400


class TestKeepAlive:
    def test_http11_default_on(self):
        assert parse(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\n").keep_alive

    def test_http11_connection_close(self):
        parsed = parse(
            b"GET /a HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n"
        )
        assert not parsed.keep_alive

    def test_http10_default_off(self):
        assert not parse(b"GET /a HTTP/1.0\r\nHost: h\r\n\r\n").keep_alive

    def test_http10_opt_in(self):
        parsed = parse(
            b"GET /a HTTP/1.0\r\nHost: h\r\nConnection: Keep-Alive\r\n\r\n"
        )
        assert parsed.keep_alive


class TestBody:
    def test_content_length_body(self):
        parsed = parse(
            b"POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert parsed.body == b"abcd"
        assert "Content-Length" not in parsed.headers

    def test_truncated_body_is_400(self):
        exc = refuse(
            b"POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nab"
        )
        assert exc.status == 400

    def test_bad_content_length_is_400(self):
        exc = refuse(
            b"POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: nan\r\n\r\n"
        )
        assert exc.status == 400

    def test_negative_content_length_is_400(self):
        exc = refuse(
            b"POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: -5\r\n\r\n"
        )
        assert exc.status == 400

    def test_oversized_body_is_413(self):
        exc = refuse(
            b"POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: 99\r\n\r\n",
            limits=Http11Limits(max_body_bytes=10),
        )
        assert exc.status == 413

    def test_transfer_encoding_is_501(self):
        exc = refuse(
            b"POST /a HTTP/1.1\r\nHost: h\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        assert exc.status == 501


class TestLimitsValidation:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Http11Limits(max_headers=0)


class TestRenderResponse:
    def test_status_line_and_framing(self):
        wire = render_response(error_response(404), keep_alive=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 404 Not Found\r\n")
        assert b"Connection: keep-alive" in head
        assert b"Content-Length: %d" % len(body) in head

    def test_close_marker(self):
        wire = render_response(error_response(400), keep_alive=False)
        assert b"Connection: close" in wire

    def test_head_omits_body_keeps_length(self):
        response = html_response("<p>hello</p>")
        wire = render_response(response, head=True)
        header, _, body = wire.partition(b"\r\n\r\n")
        assert body == b""
        assert b"Content-Length: %d" % len(response.body) in header

    def test_hop_by_hop_response_headers_dropped(self):
        response = Response(
            status=200,
            headers=Headers(
                [("Connection", "weird"), ("X-Kept", "yes")]
            ),
            body=b"x",
        )
        wire = render_response(response)
        assert b"weird" not in wire
        assert b"X-Kept: yes" in wire


class TestReadResponse:
    def round_trip(self, response, head=False, keep_alive=True):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(
                render_response(response, head=head, keep_alive=keep_alive)
            )
            reader.feed_eof()
            return await read_response(reader, head=head)

        return asyncio.run(go())

    def test_round_trip(self):
        status, headers, body, keep_alive = self.round_trip(
            html_response("<p>x</p>")
        )
        assert status == 200
        assert body == b"<p>x</p>"
        assert keep_alive

    def test_close_round_trip(self):
        status, _, _, keep_alive = self.round_trip(
            error_response(403), keep_alive=False
        )
        assert status == 403
        assert not keep_alive

    def test_head_round_trip(self):
        status, headers, body, _ = self.round_trip(
            html_response("<p>body</p>"), head=True
        )
        assert status == 200
        assert body == b""
        assert int(headers.get("Content-Length")) > 0

    def test_malformed_status_line(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(b"NOT HTTP\r\n\r\n")
            reader.feed_eof()
            return await read_response(reader)

        with pytest.raises(HttpParseError):
            asyncio.run(go())
