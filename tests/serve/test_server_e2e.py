"""End-to-end socket tests for repro.serve: live server, swarm, replay."""

from __future__ import annotations

import asyncio

from repro.http.uri import Url
from repro.overload.ladder import LadderConfig
from repro.proxy.network import ProxyNetwork
from repro.serve.server import VERIFY_PATH, DetectorServer, ServeConfig
from repro.serve.swarm import SwarmConfig, run_swarm
from repro.trace.clf import ParseStats, read_trace
from repro.trace.replay import ReplayConfig, replay_trace
from repro.util.rng import RngStream
from repro.workload.codeen import CodeenWeekConfig, CodeenWeekExperiment


def build_network(n_sessions=16, n_nodes=2, seed=7):
    experiment = CodeenWeekExperiment(
        CodeenWeekConfig(
            n_sessions=n_sessions, n_nodes=n_nodes, seed=seed
        )
    )
    network, entry_url = experiment.build_network(RngStream(seed, "record"))
    return network, entry_url, Url.parse(entry_url).host


async def start_server(network, host, **overrides):
    server = DetectorServer(
        network, default_host=host, config=ServeConfig(**overrides)
    )
    await server.start()
    return server


async def raw_exchange(port: int, payload: bytes) -> bytes:
    """One connection: send bytes, read until the server closes."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    data = await asyncio.wait_for(reader.read(), timeout=10)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return data


class TestMalformedMatrix:
    """Every malformed input maps to a 4xx/5xx — never a traceback."""

    def run_matrix(self, payloads):
        async def go():
            network, _, host = build_network(n_sessions=2)
            server = await start_server(network, host)
            try:
                return [
                    await raw_exchange(server.port, payload)
                    for payload in payloads
                ]
            finally:
                await server.close()

        return asyncio.run(go())

    def test_refusal_statuses(self):
        huge_header = (
            b"GET /a HTTP/1.1\r\nHost: www.example.com\r\n"
            + b"X-Big: " + b"v" * 40000 + b"\r\n\r\n"
        )
        cases = [
            (b"garbage\r\n\r\n", b"HTTP/1.1 400 "),
            (
                b"DELETE /a HTTP/1.1\r\nHost: www.example.com\r\n\r\n",
                b"HTTP/1.1 501 ",
            ),
            (
                b"GET /a HTTP/9.9\r\nHost: www.example.com\r\n\r\n",
                b"HTTP/1.1 505 ",
            ),
            (huge_header, b"HTTP/1.1 431 "),
            (b"GET / HTTP/1.1\r\nnocolon\r\n\r\n", b"HTTP/1.1 400 "),
        ]
        replies = self.run_matrix([payload for payload, _ in cases])
        for (_, expected), reply in zip(cases, replies):
            assert reply.startswith(expected)
            assert b"Traceback" not in reply
            assert b"Connection: close" in reply

    def test_script_in_bad_target_is_escaped(self):
        (reply,) = self.run_matrix(
            [b"GET <script>alert(1)</script> HTTP/1.1\r\n\r\n"]
        )
        assert reply.startswith(b"HTTP/1.1 400 ")
        _, _, body = reply.partition(b"\r\n\r\n")
        assert b"<script>" not in body
        assert b"&lt;script&gt;" in body

    def test_query_embedded_absolute_url_stays_on_host(self):
        async def go():
            network, _, host = build_network(n_sessions=2)
            server = await start_server(network, host)
            try:
                reply = await raw_exchange(
                    server.port,
                    b"GET /redirect?to=http://evil.example/ HTTP/1.1\r\n"
                    b"Host: www.example.com\r\nUser-Agent: UA\r\n"
                    b"Connection: close\r\n\r\n",
                )
            finally:
                await server.close()
            return server, reply

        server, reply = asyncio.run(go())
        # Misrouting to evil.example would 502 (no route to that
        # origin); staying on www.example.com gives the site's 404.
        assert not reply.startswith(b"HTTP/1.1 502 ")
        record = server.records[-1]
        url = Url.parse(record.url) if isinstance(record.url, str) else record.url
        assert url.host == "www.example.com"
        assert url.path == "/redirect"


class TestConnectionHandling:
    def test_keep_alive_serves_multiple_requests(self):
        async def go():
            network, entry_url, host = build_network(n_sessions=2)
            path = Url.parse(entry_url).path
            server = await start_server(network, host)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                request = (
                    f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                    "User-Agent: UA\r\n\r\n"
                ).encode()
                replies = []
                for _ in range(2):
                    writer.write(request)
                    await writer.drain()
                    status = await reader.readline()
                    replies.append(status)
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b""):
                            break
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":")[1])
                    await reader.readexactly(length)
                writer.write(b"garbage\r\n\r\n")
                await writer.drain()
                closing = await reader.read()
                writer.close()
                await writer.wait_closed()
            finally:
                await server.close()
            return server, replies, closing

        server, replies, closing = asyncio.run(go())
        assert all(r.startswith(b"HTTP/1.1 200 ") for r in replies)
        assert closing.startswith(b"HTTP/1.1 400 ")
        assert server.requests_handled == 2
        assert server.parse_errors == 1

    def test_head_has_length_but_no_body(self):
        async def go():
            network, entry_url, host = build_network(n_sessions=2)
            path = Url.parse(entry_url).path
            server = await start_server(network, host)
            try:
                reply = await raw_exchange(
                    server.port,
                    (
                        f"HEAD {path} HTTP/1.1\r\nHost: {host}\r\n"
                        "User-Agent: UA\r\nConnection: close\r\n\r\n"
                    ).encode(),
                )
            finally:
                await server.close()
            return reply

        reply = asyncio.run(go())
        header, _, body = reply.partition(b"\r\n\r\n")
        assert header.startswith(b"HTTP/1.1 200 ")
        assert body == b""
        # Explicit framing even without a body: the peer never needs
        # read-until-close.
        assert b"content-length:" in header.lower()


class TestCaptchaFunnel:
    @staticmethod
    def _verify_payload(body: str) -> bytes:
        return (
            f"POST {VERIFY_PATH} HTTP/1.1\r\n"
            "Host: www.example.com\r\nUser-Agent: UA\r\n"
            "X-Forwarded-For: 10.9.9.9\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            f"{body}"
        ).encode()

    def test_challenge_and_verify_stay_out_of_trace(self):
        async def go():
            network, _, host = build_network(n_sessions=2)
            server = await start_server(network, host, ladder=LadderConfig())
            try:
                challenge = await raw_exchange(
                    server.port,
                    b"GET /__captcha__/challenge HTTP/1.1\r\n"
                    b"Host: www.example.com\r\nUser-Agent: UA\r\n"
                    b"X-Forwarded-For: 10.9.9.9\r\nConnection: close\r\n\r\n",
                )
                passed = await raw_exchange(
                    server.port, self._verify_payload("answer=not-a-robot")
                )
                failed = await raw_exchange(
                    server.port, self._verify_payload("answer=no")
                )
            finally:
                await server.close()
            return server, challenge, passed, failed

        server, challenge, passed, failed = asyncio.run(go())
        assert challenge.startswith(b"HTTP/1.1 200 ")
        assert b"not-a-robot" in challenge
        assert passed.startswith(b"HTTP/1.1 302 ")
        assert failed.startswith(b"HTTP/1.1 403 ")
        # The funnel is out-of-band: nothing reached detection or the log.
        assert server.records == []
        assert server.requests_handled == 0


class TestLiveReplayRoundTrip:
    """The tentpole invariant: a live socket run's CLF log replays to
    the same session census, set-algebra summary and per-session
    verdict set."""

    @staticmethod
    def _verdicts(sessions):
        return {
            (state.key.client_ip, state.key.user_agent): (
                state.in_css_set,
                state.in_js_set,
                state.in_mouse_set,
                state.followed_hidden_link,
                state.ua_mismatched,
                state.is_human_by_set_algebra,
            )
            for state in sessions
        }

    def test_swarm_round_trip(self, tmp_path):
        trace_path = str(tmp_path / "live.log")
        probes_path = str(tmp_path / "live.keys")

        async def go():
            network, entry_url, host = build_network(
                n_sessions=16, n_nodes=2, seed=7
            )
            server = await start_server(
                network, host,
                trace_path=trace_path, probes_path=probes_path,
            )
            try:
                result = await run_swarm(
                    SwarmConfig(
                        port=server.port, sessions=16, seed=7,
                        concurrency=8,
                    ),
                    entry_url,
                )
            finally:
                server.annotate_ground_truth(result.identities())
                await server.close()
            return server, result, host

        server, result, host = asyncio.run(go())
        assert result.errors == 0
        assert result.requests == len(server.records) > 0

        live_sessions = server.finalize_sessions()
        live_summary = server.session_summary()
        live_census: dict[str, int] = {}
        for state in live_sessions:
            live_census[state.agent_kind] = (
                live_census.get(state.agent_kind, 0) + 1
            )
        assert "" not in live_census  # ground truth reached every session

        # The live log round-trips through the CLF parser losslessly.
        stats = ParseStats()
        parsed = list(
            read_trace(trace_path, default_host=host, stats=stats)
        )
        assert stats.malformed == 0
        assert len(parsed) == result.requests
        timestamps = [record.timestamp for record in parsed]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps)

        # A fresh network replaying the live log reproduces the run.
        fresh = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=2,
            instrument_enabled=False,
        )
        replayed = replay_trace(
            fresh, trace_path, probes=probes_path,
            config=ReplayConfig(default_host=host),
        )
        assert replayed.requests_replayed == result.requests
        assert replayed.kind_census() == live_census
        assert replayed.summary == live_summary
        assert self._verdicts(replayed.sessions) == self._verdicts(
            live_sessions
        )

    def test_shed_policy_keeps_trace_replayable(self, tmp_path):
        trace_path = str(tmp_path / "shed.log")

        async def go():
            network, entry_url, host = build_network(
                n_sessions=8, n_nodes=2, seed=13
            )
            server = await start_server(
                network, host,
                trace_path=trace_path,
                policy="shed", max_pending_per_node=1,
            )
            try:
                result = await run_swarm(
                    SwarmConfig(
                        port=server.port, sessions=8, seed=13,
                        concurrency=8,
                    ),
                    entry_url,
                )
            finally:
                await server.close()
            return server, result, host

        server, result, host = asyncio.run(go())
        assert result.errors == 0
        # Sheds (if any) answered 503 and stayed out of the log.
        assert len(server.records) + server.shed_count == result.requests
        stats = ParseStats()
        parsed = list(
            read_trace(trace_path, default_host=host, stats=stats)
        )
        assert stats.malformed == 0
        assert len(parsed) == len(server.records)
