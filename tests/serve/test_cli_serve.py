"""Tests for the ``repro serve`` CLI subcommand."""

from __future__ import annotations

from repro.cli import build_serve_parser, main


def census(text: str) -> dict[str, int]:
    lines = text.split("analyzable sessions:")[-1].splitlines()[1:]
    out: dict[str, int] = {}
    for line in lines:
        parts = line.split()
        if len(parts) == 2 and parts[1].isdigit():
            out[parts[0]] = int(parts[1])
    return out


class TestParser:
    def test_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.port == 0
        assert args.swarm == 0
        assert args.shed == "block"
        assert args.mix == "codeen_week"

    def test_unknown_mix_is_usage_error(self, capsys):
        assert main(["serve", "--mix", "nope", "--swarm", "1"]) == 2
        assert "repro serve:" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_swarm_then_replay_round_trip(self, capsys, tmp_path):
        trace = str(tmp_path / "live.log.gz")
        probes = str(tmp_path / "live.keys.gz")
        assert main([
            "serve", "--swarm", "12", "--mix", "smoke",
            "--nodes", "2", "--seed", "61",
            "--trace", trace, "--probes", probes,
        ]) == 0
        served = capsys.readouterr().out
        assert "serving http://" in served
        assert "0 transport errors" in served
        assert "analyzable sessions:" in served

        assert main([
            "replay", "--trace", trace, "--probes", probes,
            "--nodes", "2",
        ]) == 0
        replayed = capsys.readouterr().out
        assert "0 malformed lines skipped" in replayed
        # The live census reproduces over the socket boundary verbatim.
        assert census(replayed) == census(served)
        assert census(served)  # non-empty and carrying real kinds
