"""Arrival-profile replays and out-of-order timestamp tolerance.

Burst and diurnal profiles only exist under event-time drivers; the
round trip (record interleaved → heap-merged replay) must reproduce the
census for both, synchronously and through the pipelined ingress.

Real merged multi-node logs also deliver *out-of-order* timestamps —
the case that previously corrupted ``TokenBucket`` refill clocks.  A
cross-client scramble that keeps each client's own requests in order
must produce identical rate-limit decisions to the sorted replay,
because buckets are per-client and stale arrivals earn no refill.
"""

from __future__ import annotations

import pytest

from repro.http.message import Method
from repro.http.uri import Url
from repro.proxy.network import ProxyNetwork
from repro.proxy.ratelimit import RateLimitConfig
from repro.trace.arrival import BurstArrival, DiurnalArrival
from repro.trace.clf import TraceRecord
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE

SEED = 93
N_SESSIONS = 40


def _record(make_network, entry_url, arrival):
    network = make_network(n_nodes=2, seed=SEED)
    recorder = TraceRecorder()
    recorder.attach(network)
    result = WorkloadEngine(
        network,
        SMOKE,
        entry_url,
        RngStream(SEED, "wl"),
        WorkloadConfig(
            n_sessions=N_SESSIONS,
            mode="interleaved",
            arrival=arrival,
            captcha_enabled=False,
        ),
    ).run()
    recorder.detach(network)
    recorder.annotate_ground_truth(result.records)
    return result, recorder.sorted_records(), recorder.sorted_probes()


def _replay(records, probes, **config_kwargs):
    network = ProxyNetwork(
        origins={},
        rng=RngStream(0, "replay"),
        n_nodes=2,
        instrument_enabled=False,
    )
    engine = TraceReplayEngine(
        network, ReplayConfig(assume_sorted=True, **config_kwargs)
    )
    return engine.replay(list(records), probes=list(probes))


class TestArrivalProfileRoundTrip:
    @pytest.mark.parametrize(
        "arrival",
        [BurstArrival(burst_share=0.6), DiurnalArrival(peak_ratio=6.0)],
        ids=["burst", "diurnal"],
    )
    def test_census_survives_replay(self, make_network, entry_url, arrival):
        recorded, records, probes = _record(
            make_network, entry_url, arrival
        )
        replayed = _replay(records, probes)
        assert replayed.kind_census() == recorded.kind_census()
        assert replayed.summary == recorded.summary
        pipelined = _replay(
            records, probes, executor="process", queue_depth=16
        )
        assert pipelined.kind_census() == recorded.kind_census()
        assert pipelined.summary == recorded.summary

    def test_burst_timestamps_really_cluster(self, make_network, entry_url):
        arrival = BurstArrival(
            burst_share=0.8, burst_start=0.4, burst_width=0.02
        )
        _recorded, records, _probes = _record(
            make_network, entry_url, arrival
        )
        span = records[-1].timestamp - records[0].timestamp
        window_start = records[0].timestamp + 0.35 * span
        window_end = records[0].timestamp + 0.55 * span
        in_window = sum(
            1 for r in records if window_start <= r.timestamp <= window_end
        )
        # The flash crowd concentrates far more than the ~20% of
        # traffic a uniform spread would put in this window.
        assert in_window / len(records) > 0.5


def _synthetic_burst(n_clients: int = 12, per_client: int = 40):
    """Per-client monotone request streams, dense enough to rate-limit."""
    records = []
    for client in range(n_clients):
        for index in range(per_client):
            records.append(
                TraceRecord(
                    client_ip=f"10.9.0.{client}",
                    # Clients advance together but interleave unevenly.
                    timestamp=index * 0.2 + client * 0.003,
                    method=Method.GET,
                    url=Url.parse(f"http://site.example/p{index % 7}.html"),
                    status=200,
                    size=512,
                    user_agent=f"agent-{client}",
                )
            )
    return records


def _scramble_across_clients(records):
    """Round-robin by client: per-client order kept, global order broken."""
    by_client: dict[str, list[TraceRecord]] = {}
    for record in records:
        by_client.setdefault(record.client_ip, []).append(record)
    for stream in by_client.values():
        stream.sort(key=lambda r: r.timestamp)
    scrambled = []
    streams = list(by_client.values())
    cursor = 0
    while any(streams):
        stream = streams[cursor % len(streams)]
        if stream:
            # Pull a few at a time so neighbours jump ahead of each
            # other by whole timestamp strides.
            scrambled.extend(stream[:3])
            del stream[:3]
        cursor += 1
    return scrambled


class TestOutOfOrderTimestamps:
    def _replay_scrambled(self, records, rate_limit=None, **config_kwargs):
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "replay"),
            n_nodes=2,
            instrument_enabled=False,
            rate_limit=rate_limit,
        )
        engine = TraceReplayEngine(
            network, ReplayConfig(assume_sorted=True, **config_kwargs)
        )
        return engine.replay(list(records))

    def test_scramble_is_actually_out_of_order(self):
        records = _synthetic_burst()
        scrambled = _scramble_across_clients(records)
        timestamps = [r.timestamp for r in scrambled]
        assert timestamps != sorted(timestamps)

    @pytest.mark.parametrize("executor", [None, "thread"])
    def test_census_survives_cross_client_scramble(self, executor):
        """Detection state is per-session; per-client order is enough."""
        records = _synthetic_burst()
        scrambled = _scramble_across_clients(records)
        kwargs = {}
        if executor is not None:
            kwargs = {"executor": executor, "queue_depth": 16}
        ordered = self._replay_scrambled(
            sorted(records, key=lambda r: r.timestamp), **kwargs
        )
        shuffled = self._replay_scrambled(scrambled, **kwargs)
        assert shuffled.kind_census() == ordered.kind_census()
        assert shuffled.summary == ordered.summary
        assert shuffled.stats.requests == ordered.stats.requests
        assert {
            (s.key.client_ip, s.started_at, s.request_count)
            for s in shuffled.sessions
        } == {
            (s.key.client_ip, s.started_at, s.request_count)
            for s in ordered.sessions
        }

    def test_eviction_neutral_on_in_order_streams(self):
        """Housekeeping sweeps (refresh + evict-replenished) must not
        change a single decision when timestamps arrive in order —
        lazy refill is path-independent and a recreated bucket is
        indistinguishable from a refilled one."""
        limit = RateLimitConfig(requests_per_second=2.0, burst=5.0)
        records = sorted(
            _synthetic_burst(), key=lambda r: r.timestamp
        )
        without_sweeps = self._replay_scrambled(
            records, rate_limit=limit, housekeeping_interval=0.0
        )
        with_sweeps = self._replay_scrambled(
            records, rate_limit=limit, housekeeping_interval=2.0
        )
        assert with_sweeps.stats.rate_limited == (
            without_sweeps.stats.rate_limited
        )
        assert with_sweeps.stats.rate_limited > 0  # the limiter really bit

    def test_stale_timestamps_never_recredit_buckets(self):
        """The PR 2 regression at replay level: out-of-order arrivals
        (here with sweeps evicting and recreating buckets mid-run) must
        never let a client spend more tokens than its bucket could
        physically have earned — the failure mode of the old refill-
        clock rewind was exactly such double crediting."""
        limit = RateLimitConfig(requests_per_second=2.0, burst=5.0)
        records = _scramble_across_clients(_synthetic_burst())
        result = self._replay_scrambled(
            records, rate_limit=limit, housekeeping_interval=2.0
        )
        allowed = result.stats.requests - result.stats.rate_limited
        spans: dict[str, tuple[float, float]] = {}
        for record in records:
            low, high = spans.get(
                record.client_ip, (record.timestamp, record.timestamp)
            )
            spans[record.client_ip] = (
                min(low, record.timestamp),
                max(high, record.timestamp),
            )
        budget = sum(
            limit.burst + limit.requests_per_second * (high - low)
            for low, high in spans.values()
        )
        assert allowed <= budget
        assert result.stats.rate_limited > 0
        # Determinism: the exact decisions are reproducible.
        again = self._replay_scrambled(
            records, rate_limit=limit, housekeeping_interval=2.0
        )
        assert again.stats.rate_limited == result.stats.rate_limited
