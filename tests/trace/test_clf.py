"""Tests for repro.trace.clf."""

from __future__ import annotations

import gzip

import pytest

from repro.http.message import Method
from repro.http.uri import Url
from repro.trace.clf import (
    ParseStats,
    TraceParseError,
    TraceRecord,
    format_clf_line,
    format_clf_time,
    parse_clf_line,
    parse_clf_time,
    read_trace,
    write_trace,
)


def make_record(**overrides) -> TraceRecord:
    defaults = dict(
        client_ip="10.1.2.3",
        timestamp=742.318204,
        method=Method.GET,
        url=Url.parse("http://www.example.com/a/b.html?x=1"),
        status=200,
        size=5120,
        user_agent="Mozilla/4.0 (compatible; MSIE 6.0)",
        referer="http://www.example.com/",
        agent_kind="human_js",
        true_label="human",
    )
    defaults.update(overrides)
    return TraceRecord(**defaults)


class TestTime:
    def test_round_trip_microseconds(self):
        for t in (0.0, 0.5, 742.318204, 86_399.999999, 86_400.0, 604_800.25):
            assert parse_clf_time(format_clf_time(t)) == pytest.approx(
                t, abs=1e-6
            )

    def test_epoch_renders_as_feb_2006(self):
        assert format_clf_time(0.0) == "06/Feb/2006:00:00:00 +0000"

    def test_whole_seconds_have_no_fraction(self):
        assert "." not in format_clf_time(61.0)

    def test_accepts_plain_clf_stamp(self):
        assert parse_clf_time("06/Feb/2006:00:01:01 +0000") == 61.0

    def test_timezone_offset_applied(self):
        utc = parse_clf_time("06/Feb/2006:05:00:00 +0000")
        east = parse_clf_time("06/Feb/2006:06:00:00 +0100")
        assert utc == east

    def test_crosses_month_and_leap_year(self):
        # 2008 is a leap year; the date survives the round trip.
        text = format_clf_time(parse_clf_time("29/Feb/2008:12:00:00 +0000"))
        assert text.startswith("29/Feb/2008:12:00:00")

    def test_rejects_garbage(self):
        with pytest.raises(TraceParseError):
            parse_clf_time("yesterday at noon")
        with pytest.raises(TraceParseError):
            parse_clf_time("31/Feb/2006:00:00:00 +0000")
        with pytest.raises(TraceParseError):
            parse_clf_time("05/Feb/2006:00:00:00 +0000")  # pre-epoch


class TestLineRoundTrip:
    def test_full_record(self):
        record = make_record()
        assert parse_clf_line(format_clf_line(record)) == record

    def test_missing_optionals(self):
        record = make_record(
            referer=None, user_agent="", agent_kind="", true_label=""
        )
        line = format_clf_line(record)
        assert ' "-" "-"' in line
        assert parse_clf_line(line) == record

    def test_quotes_in_user_agent_escaped(self):
        record = make_record(user_agent='Weird "quoted" agent\\v1')
        assert parse_clf_line(format_clf_line(record)) == record

    def test_ground_truth_rides_ident_fields(self):
        line = format_clf_line(make_record())
        assert line.split(" ")[1] == "human_js"
        assert line.split(" ")[2] == "human"

    def test_real_log_line_without_combined_fields(self):
        line = (
            '66.249.66.1 - - [06/Feb/2006:10:00:00 +0000] '
            '"GET http://www.example.com/robots.txt HTTP/1.0" 404 209'
        )
        record = parse_clf_line(line)
        assert record.user_agent == ""
        assert record.status == 404

    def test_origin_form_target_needs_default_host(self):
        line = (
            '1.2.3.4 - - [06/Feb/2006:10:00:00 +0000] '
            '"GET /index.html HTTP/1.1" 200 99 "-" "curl/7.0"'
        )
        with pytest.raises(TraceParseError):
            parse_clf_line(line)
        record = parse_clf_line(line, default_host="www.example.com")
        assert str(record.url) == "http://www.example.com/index.html"

    def test_malformed_lines_raise(self):
        for bad in (
            "not a log line",
            '1.2.3.4 - - [bad time] "GET http://h/ HTTP/1.1" 200 1 "-" "-"',
            '1.2.3.4 - - [06/Feb/2006:10:00:00 +0000] "TRACE http://h/ '
            'HTTP/1.1" 200 1 "-" "-"',
        ):
            with pytest.raises(TraceParseError):
                parse_clf_line(bad)

    def test_to_request_rebuilds_headers(self):
        request = make_record().to_request()
        assert request.user_agent.startswith("Mozilla/4.0")
        assert request.referer == "http://www.example.com/"
        assert request.timestamp == pytest.approx(742.318204)


class TestFileIo:
    def test_write_read_plain(self, tmp_path):
        path = str(tmp_path / "trace.log")
        records = [make_record(timestamp=float(i)) for i in range(5)]
        assert write_trace(path, records) == 5
        assert list(read_trace(path)) == records

    def test_write_read_gzip(self, tmp_path):
        path = str(tmp_path / "trace.log.gz")
        records = [make_record(timestamp=float(i)) for i in range(5)]
        write_trace(path, records)
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        assert list(read_trace(path)) == records

    def test_reads_gzip_without_suffix(self, tmp_path):
        path = str(tmp_path / "mystery.log")
        line = format_clf_line(make_record())
        with gzip.open(path, "wt") as handle:
            handle.write(line + "\n")
        assert len(list(read_trace(path))) == 1

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "trace.log")
        good = format_clf_line(make_record())
        with open(path, "w") as handle:
            handle.write("# comment\n")
            handle.write(good + "\n")
            handle.write("garbage line\n")
            handle.write("\n")
            handle.write(good + "\n")
        stats = ParseStats()
        records = list(read_trace(path, stats=stats))
        assert len(records) == 2
        assert stats.malformed == 1
        assert stats.parsed == 2
        assert "garbage" in stats.samples[0]

    def test_strict_mode_raises(self, tmp_path):
        path = str(tmp_path / "trace.log")
        with open(path, "w") as handle:
            handle.write("garbage line\n")
        with pytest.raises(TraceParseError):
            list(read_trace(path, strict=True))

    def test_reads_from_iterable(self):
        lines = [format_clf_line(make_record(timestamp=float(i)))
                 for i in range(3)]
        assert len(list(read_trace(lines))) == 3
