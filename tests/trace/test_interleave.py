"""Interleaved scheduling and arrival profiles.

The key regression: for the default uniform arrival profile, interleaved
mode must produce per-session results identical to sequential mode —
per-session state is cursor-owned, and shared network state is keyed so
reordering cannot leak between sessions.
"""

from __future__ import annotations

import pytest

from repro.trace.arrival import (
    BurstArrival,
    DiurnalArrival,
    UniformArrival,
    profile_by_name,
)
from repro.trace.interleave import InterleavedScheduler
from repro.util.rng import RngStream
from repro.util.timeutil import DAY, WEEK
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import CODEEN_WEEK, SMOKE


def run_mode(make_network, entry_url, mode, seed=21, n=60, **config_kwargs):
    network = make_network(n_nodes=2, seed=seed)
    engine = WorkloadEngine(
        network,
        CODEEN_WEEK,
        entry_url,
        RngStream(seed, "wl"),
        WorkloadConfig(n_sessions=n, mode=mode, **config_kwargs),
    )
    return engine.run()


def per_session_view(result):
    """Order-independent per-session evidence, excluding byte counters.

    Byte counts are excluded deliberately: instrumentation key material
    is drawn per served page in network arrival order, so the obfuscated
    beacon markup can differ in *length* between modes even though every
    probe and fetch is structurally identical.
    """
    return sorted(
        (
            s.key.client_ip,
            s.key.user_agent,
            s.request_count,
            s.agent_kind,
            s.true_label,
            s.in_css_set,
            s.in_js_set,
            s.in_mouse_set,
            s.followed_hidden_link,
            s.ua_mismatched,
            s.passed_captcha,
            s.wrong_key_fetches,
        )
        for s in result.sessions
    )


class TestModeEquivalence:
    def test_uniform_interleaved_matches_sequential(
        self, make_network, entry_url
    ):
        sequential = run_mode(make_network, entry_url, "sequential")
        interleaved = run_mode(make_network, entry_url, "interleaved")
        assert per_session_view(sequential) == per_session_view(interleaved)
        assert sequential.summary == interleaved.summary
        assert sequential.kind_census() == interleaved.kind_census()

    def test_session_records_match(self, make_network, entry_url):
        sequential = run_mode(make_network, entry_url, "sequential", n=40)
        interleaved = run_mode(make_network, entry_url, "interleaved", n=40)
        a = [(r.client_ip, r.requests, r.started_at, r.ended_at)
             for r in sequential.records]
        b = [(r.client_ip, r.requests, r.started_at, r.ended_at)
             for r in interleaved.records]
        assert a == b

    def test_captcha_outcomes_mode_independent(
        self, make_network, entry_url
    ):
        sequential = run_mode(
            make_network, entry_url, "sequential", captcha_enabled=True
        )
        interleaved = run_mode(
            make_network, entry_url, "interleaved", captcha_enabled=True
        )
        assert (
            sequential.summary.captcha_passes
            == interleaved.summary.captcha_passes
        )

    def test_feature_datasets_match(self, make_network, entry_url):
        sequential = run_mode(
            make_network, entry_url, "sequential", n=20,
            collect_features=True,
        )
        interleaved = run_mode(
            make_network, entry_url, "interleaved", n=20,
            collect_features=True,
        )
        ids = lambda result: sorted(
            (e.session_id, e.request_count) for e in result.dataset.examples
        )
        assert ids(sequential) == ids(interleaved)

    def test_requests_arrive_in_timestamp_order(
        self, make_network, entry_url
    ):
        network = make_network(n_nodes=2, seed=9)
        seen: list[float] = []
        network.add_tap(lambda req, resp: seen.append(req.timestamp))
        engine = WorkloadEngine(
            network,
            SMOKE,
            entry_url,
            RngStream(9, "wl"),
            WorkloadConfig(n_sessions=30, mode="interleaved"),
        )
        engine.run()
        assert seen == sorted(seen)
        # The sequential engine cannot make this guarantee: sessions
        # overlap in virtual time but run back to back.

    def test_housekeeping_runs_during_replay(self, make_network, entry_url):
        network = make_network(n_nodes=2, seed=9)
        calls: list[float] = []
        original = network.housekeeping
        network.housekeeping = lambda now: (
            calls.append(now), original(now))[-1]
        engine = WorkloadEngine(
            network,
            SMOKE,
            entry_url,
            RngStream(9, "wl"),
            WorkloadConfig(
                n_sessions=30, mode="interleaved",
                housekeeping_interval=3600.0,
            ),
        )
        engine.run()
        assert calls, "housekeeping never ran during the replay"
        assert calls == sorted(calls)

    def test_housekeeping_runs_in_sequential_mode(
        self, make_network, entry_url
    ):
        network = make_network(n_nodes=2, seed=9)
        calls: list[float] = []
        original = network.housekeeping
        network.housekeeping = lambda now: (
            calls.append(now), original(now))[-1]
        engine = WorkloadEngine(
            network,
            SMOKE,
            entry_url,
            RngStream(9, "wl"),
            WorkloadConfig(n_sessions=30, housekeeping_interval=3600.0),
        )
        engine.run()
        assert calls, "housekeeping never ran during the replay"


class TestScheduler:
    def test_empty_population(self):
        scheduler = InterleavedScheduler(lambda request: None)
        assert scheduler.run([], []) == []

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            InterleavedScheduler(
                lambda request: None, housekeeping_interval=-1.0
            )


class TestArrivalProfiles:
    def test_uniform_matches_seed_sampling(self):
        # The profile must reproduce the seed engine's draws exactly so
        # default workloads keep their start times across versions.
        rng_a = RngStream(5, "starts")
        rng_b = RngStream(5, "starts")
        expected = sorted(rng_a.uniform(0.0, WEEK) for _ in range(50))
        assert UniformArrival().sample(rng_b, 50, WEEK) == expected

    def test_samples_sorted_and_in_range(self):
        for profile in (UniformArrival(), DiurnalArrival(), BurstArrival()):
            starts = profile.sample(RngStream(3, "starts"), 200, WEEK)
            assert len(starts) == 200
            assert starts == sorted(starts)
            assert all(0.0 <= s < WEEK for s in starts)

    def test_burst_concentrates_mass(self):
        profile = BurstArrival(
            burst_share=0.6, burst_start=0.4, burst_width=0.02
        )
        starts = profile.sample(RngStream(3, "starts"), 2000, WEEK)
        window = [s for s in starts
                  if 0.4 * WEEK <= s <= 0.42 * WEEK]
        # ~60% burst + ~2% background, against 2% for uniform.
        assert len(window) > 0.5 * len(starts)

    def test_diurnal_peak_beats_trough(self):
        profile = DiurnalArrival(period=DAY, peak_ratio=6.0, peak_at=0.5)
        starts = profile.sample(RngStream(3, "starts"), 4000, DAY)
        peak = sum(1 for s in starts if 0.4 * DAY <= s < 0.6 * DAY)
        trough = sum(1 for s in starts if s < 0.1 * DAY or s >= 0.9 * DAY)
        assert peak > 2 * trough

    def test_profile_by_name(self):
        assert isinstance(profile_by_name("uniform"), UniformArrival)
        assert isinstance(
            profile_by_name("diurnal", peak_ratio=2.0), DiurnalArrival
        )
        with pytest.raises(KeyError):
            profile_by_name("tsunami")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DiurnalArrival(peak_ratio=0.5)
        with pytest.raises(ValueError):
            BurstArrival(burst_share=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(mode="parallel")
        with pytest.raises(ValueError):
            WorkloadConfig(housekeeping_interval=-5.0)
