"""Round-trip invariance: record a workload, replay it, get the same census.

The acceptance property of the trace subsystem — a synthetic workload
exported to CLF and replayed through a *fresh* network reproduces the
original run's analyzable-session census and set-algebra summary.
"""

from __future__ import annotations

import pytest

from repro.proxy.network import ProxyNetwork
from repro.trace.clf import format_clf_line, read_trace
from repro.trace.recorder import (
    ProbeRecord,
    TraceRecorder,
    format_probe_line,
    parse_probe_line,
    read_probe_journal,
    record_workload,
    write_probe_journal,
)
from repro.trace.replay import ReplayConfig, TraceReplayEngine, replay_trace
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE


def make_engine(make_network, entry_url, n_sessions=40, seed=21, **config):
    network = make_network(n_nodes=2, seed=seed)
    return WorkloadEngine(
        network,
        SMOKE,
        entry_url,
        RngStream(seed, "wl"),
        WorkloadConfig(
            n_sessions=n_sessions, captcha_enabled=False, **config
        ),
    )


def make_recording_engine(site, origin, n_sessions=40, seed=21):
    network = ProxyNetwork(
        origins={site.host: origin}, rng=RngStream(seed, "net"), n_nodes=2
    )
    entry_url = f"http://{site.host}{site.home_path}"
    return WorkloadEngine(
        network,
        SMOKE,
        entry_url,
        RngStream(seed, "wl"),
        WorkloadConfig(n_sessions=n_sessions, captcha_enabled=False),
    )


def fresh_replay_network(n_nodes=2) -> ProxyNetwork:
    return ProxyNetwork(
        origins={},
        rng=RngStream(0, "replay"),
        n_nodes=n_nodes,
        instrument_enabled=False,
    )


@pytest.fixture(scope="module")
def recorded(tmp_path_factory, small_site, small_origin):
    """One recorded SMOKE workload shared by the round-trip tests."""
    tmp = tmp_path_factory.mktemp("trace")
    trace_path = str(tmp / "week.log.gz")
    probes_path = str(tmp / "week.keys.gz")
    engine = make_recording_engine(small_site, small_origin)
    result, recorder = record_workload(engine, trace_path, probes_path)
    return result, recorder, trace_path, probes_path


class TestRecorder:
    def test_capture_counts(self, recorded):
        result, recorder, _, _ = recorded
        assert len(recorder.records) == result.stats.requests
        assert len(recorder.probes) > 0

    def test_trace_is_sorted_and_annotated(self, recorded):
        _, _, trace_path, _ = recorded
        records = list(read_trace(trace_path))
        times = [r.timestamp for r in records]
        assert times == sorted(times)
        kinds = {r.agent_kind for r in records}
        assert "human_js" in kinds
        labels = {r.true_label for r in records}
        assert labels <= {"human", "robot"}

    def test_detach_stops_capture(self, make_network, entry_url):
        engine = make_engine(make_network, entry_url, n_sessions=4)
        recorder = TraceRecorder()
        recorder.attach(engine.network)
        recorder.detach(engine.network)
        engine.run()
        assert recorder.records == []
        assert recorder.probes == []

    def test_probe_line_round_trip(self, recorded):
        _, recorder, _, _ = recorded
        for probe in recorder.probes[:50]:
            assert parse_probe_line(format_probe_line(probe)) == probe

    def test_probe_journal_file_round_trip(self, tmp_path, recorded):
        _, recorder, _, _ = recorded
        path = str(tmp_path / "probes.keys")
        sample = recorder.sorted_probes()[:100]
        assert write_probe_journal(path, sample) == 100
        assert list(read_probe_journal(path)) == sample


class TestRoundTrip:
    def test_census_and_summary_survive_replay(self, recorded):
        result, _, trace_path, probes_path = recorded
        replayed = TraceReplayEngine(
            fresh_replay_network(), ReplayConfig(assume_sorted=True)
        ).replay(trace_path, probes=probes_path)
        assert replayed.kind_census() == result.kind_census()
        assert replayed.summary == result.summary
        assert replayed.analyzable_count == result.analyzable_count
        assert replayed.requests_replayed == result.stats.requests
        assert replayed.parse_stats.malformed == 0

    def test_round_trip_independent_of_node_count(self, recorded):
        # Sticky <IP> -> node hashing keeps each session whole on one
        # node, so the aggregated census is node-topology independent.
        result, _, trace_path, probes_path = recorded
        replayed = replay_trace(
            fresh_replay_network(n_nodes=5), trace_path, probes=probes_path
        )
        assert replayed.kind_census() == result.kind_census()
        assert replayed.summary == result.summary

    def test_replay_without_journal_loses_probe_evidence(self, recorded):
        result, _, trace_path, _ = recorded
        replayed = replay_trace(fresh_replay_network(), trace_path)
        # Request-stream structure survives...
        assert replayed.analyzable_count == result.analyzable_count
        assert replayed.kind_census() == result.kind_census()
        # ...but probe-derived evidence needs the server-side key table.
        assert replayed.summary.mouse_movements == 0
        assert replayed.summary.css_downloads == 0

    def test_unsorted_source_is_sorted_by_default(self, recorded):
        result, recorder, _, probes_path = recorded
        shuffled = RngStream(7, "shuffle").shuffled(
            recorder.sorted_records()
        )
        replayed = replay_trace(
            fresh_replay_network(), shuffled, probes=probes_path
        )
        assert replayed.summary == result.summary

    def test_malformed_lines_are_skipped_not_fatal(
        self, tmp_path, recorded
    ):
        result, recorder, _, probes_path = recorded
        path = str(tmp_path / "dirty.log")
        with open(path, "w") as handle:
            for index, record in enumerate(recorder.sorted_records()):
                if index % 500 == 0:
                    handle.write("!!! corrupted line !!!\n")
                handle.write(format_clf_line(record) + "\n")
        replayed = replay_trace(
            fresh_replay_network(), path, probes=probes_path
        )
        assert replayed.parse_stats.malformed > 0
        assert replayed.summary == result.summary

    def test_probe_journal_errors_reported_separately(
        self, tmp_path, recorded
    ):
        result, recorder, trace_path, _ = recorded
        path = str(tmp_path / "corrupt.keys")
        with open(path, "w") as handle:
            handle.write("broken\tjournal\tline\n")
            for probe in recorder.sorted_probes():
                handle.write(format_probe_line(probe) + "\n")
        replayed = replay_trace(
            fresh_replay_network(), trace_path, probes=path
        )
        # Journal damage must not masquerade as access-log damage.
        assert replayed.parse_stats.malformed == 0
        assert replayed.probe_parse_stats.malformed == 1
        assert replayed.summary == result.summary

    def test_multiple_sources_heap_merge(self, recorded):
        result, recorder, _, probes_path = recorded
        records = recorder.sorted_records()
        evens = records[::2]
        odds = records[1::2]
        replayed = TraceReplayEngine(
            fresh_replay_network(), ReplayConfig(assume_sorted=True)
        ).replay(evens, odds, probes=probes_path)
        assert replayed.summary == result.summary
        assert replayed.requests_replayed == len(records)

    def test_housekeeping_interval_does_not_change_census(self, recorded):
        result, _, trace_path, probes_path = recorded
        fast = replay_trace(
            fresh_replay_network(), trace_path, probes=probes_path,
            config=ReplayConfig(housekeeping_interval=60.0),
        )
        off = replay_trace(
            fresh_replay_network(), trace_path, probes=probes_path,
            config=ReplayConfig(housekeeping_interval=0.0),
        )
        assert fast.summary == off.summary == result.summary

    def test_replay_needs_a_source(self):
        with pytest.raises(ValueError):
            TraceReplayEngine(fresh_replay_network()).replay()

    def test_span_and_latencies_populated(self, recorded):
        result, _, trace_path, probes_path = recorded
        replayed = replay_trace(
            fresh_replay_network(), trace_path, probes=probes_path
        )
        assert replayed.span > 0
        assert len(replayed.latencies) == replayed.analyzable_count
        assert replayed.probes_loaded > 0


class TestProbeRecord:
    def test_to_probe_round_trip(self, recorded):
        _, recorder, _, _ = recorded
        journalled = recorder.probes[0]
        probe = journalled.to_probe()
        assert ProbeRecord.from_probe(probe) == journalled
