"""Unit tests for delay-budget admission and per-IP fairness."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.overload.admission import (
    AdaptiveConfig,
    DelayBudgetController,
    FairnessTracker,
)

FLOODER = "10.9.9.9"
LEGIT = "10.0.0.1"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delay_budget": 0.0},
            {"delay_budget": -1.0},
            {"resume_ratio": 0.0},
            {"resume_ratio": 1.0},
            {"fairness_half_life": 0.0},
            {"fairness_boost": 0.5},
            {"ramp_requests": 0},
            {"duty_cycle": 1},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs)

    def test_defaults_are_valid(self):
        AdaptiveConfig()


class TestFairnessTracker:
    def test_shares_are_admitted_fractions(self):
        tracker = FairnessTracker(half_life=5.0)
        tracker.note(FLOODER, 0.0)
        tracker.note(FLOODER, 0.0)
        tracker.note(LEGIT, 0.0)
        assert tracker.share(FLOODER, 0.0) == pytest.approx(2 / 3)
        assert tracker.share(LEGIT, 0.0) == pytest.approx(1 / 3)
        assert tracker.fair_share() == pytest.approx(0.5)
        assert tracker.population == 2

    def test_empty_tracker_shares_nothing(self):
        tracker = FairnessTracker(half_life=5.0)
        assert tracker.share(LEGIT, 0.0) == 0.0
        assert tracker.fair_share() == 1.0

    def test_old_traffic_decays_out_of_the_share(self):
        tracker = FairnessTracker(half_life=5.0)
        for _ in range(100):
            tracker.note(FLOODER, 0.0)
        tracker.note(LEGIT, 50.0)  # ten half-lives later
        assert tracker.share(LEGIT, 50.0) > 0.9
        assert tracker.share(FLOODER, 50.0) < 0.1

    def test_renormalization_preserves_shares(self):
        # Half-life of 1ms: 1 second of elapsed time is 1000 doublings,
        # far past the renormalisation scale.
        tracker = FairnessTracker(half_life=0.001)
        tracker.note(FLOODER, 0.0)
        tracker.note(LEGIT, 1.0)
        tracker.note(LEGIT, 1.0)
        # The flooder's stale weight fell below the prune cutoff.
        assert tracker.share(LEGIT, 1.0) == pytest.approx(1.0)
        assert tracker.population == 1


def _controller(lanes=1, metrics=None, **overrides):
    kwargs = {
        "delay_budget": 1.0,
        "resume_ratio": 0.5,
        "fairness_half_life": 5.0,
        "fairness_boost": 2.0,
        "ramp_requests": 4,
        "duty_cycle": 2,
        **overrides,
    }
    return DelayBudgetController(
        AdaptiveConfig(**kwargs), lanes, metrics=metrics
    )


class TestHysteresis:
    def test_admits_under_budget(self):
        controller = _controller()
        assert controller.admit(0, LEGIT, 0.5, now=0.0)
        report = controller.report()
        assert report.admitted == 1 and report.shed == 0

    def test_enters_above_budget_exits_below_resume(self):
        controller = _controller()
        controller.admit(0, LEGIT, 1.5, now=0.0)  # enter
        assert controller.report().lanes[0].entered == 1
        # Between resume (0.5) and budget (1.0): still shedding — no
        # flapping around the threshold.
        controller.admit(0, LEGIT, 0.8, now=0.1)
        assert controller.report().lanes[0].exited == 0
        controller.admit(0, LEGIT, 0.4, now=0.2)  # exit
        lane = controller.report().lanes[0]
        assert lane.exited == 1

    def test_budget_itself_does_not_trigger(self):
        controller = _controller()
        assert controller.admit(0, LEGIT, 1.0, now=0.0)
        assert controller.report().lanes[0].entered == 0

    def test_lanes_are_independent(self):
        controller = _controller(lanes=2)
        controller.admit(0, LEGIT, 5.0, now=0.0)
        assert controller.admit(1, LEGIT, 0.0, now=0.0)
        lanes = controller.report().lanes
        assert lanes[0].entered == 1 and lanes[1].entered == 0


class TestFairnessShedding:
    def test_over_share_ip_sheds_first(self):
        controller = _controller()
        for _ in range(90):
            controller.admit(0, FLOODER, 0.0, now=0.0)
        for _ in range(10):
            controller.admit(0, LEGIT, 0.0, now=0.0)
        # Overload: the flooder holds 90% of the admitted share, the
        # fair share is 50% — it absorbs the drops while the
        # legitimate client keeps being admitted.
        assert not controller.admit(0, FLOODER, 2.0, now=0.0)
        assert controller.admit(0, LEGIT, 2.0, now=0.0)
        report = controller.report()
        assert report.reasons == {"fairness": 1}
        assert report.shed_fraction(FLOODER) > 0
        assert report.shed_fraction(LEGIT) == 0.0

    def test_multiple_tightens_as_pressure_ramps(self):
        # At episode start the multiple is boost * fair_share; a client
        # just over fair share only starts shedding once the episode
        # persists.
        controller = _controller(fairness_boost=2.0, ramp_requests=4)
        for _ in range(60):
            controller.admit(0, FLOODER, 0.0, now=0.0)
        for _ in range(40):
            controller.admit(0, LEGIT, 0.0, now=0.0)
        # share(FLOODER)=0.6, fair=0.5: under the boosted multiple at
        # first evaluation (0.5 * 1.75 = 0.875), over it at pressure 1.
        assert controller.admit(0, FLOODER, 2.0, now=0.0)
        for _ in range(3):
            controller.admit(0, LEGIT, 2.0, now=0.0)
        assert not controller.admit(0, FLOODER, 2.0, now=0.0)
        assert controller.report().reasons["fairness"] == 1


class TestDutyCycle:
    def test_saturated_pressure_admits_one_in_n(self):
        controller = _controller(ramp_requests=4, duty_cycle=2)
        decisions = [
            controller.admit(0, LEGIT, 2.0, now=0.0) for _ in range(12)
        ]
        # A single client is never over its own fair share, so only the
        # duty-cycle backstop sheds: nothing while the pressure ramps,
        # every other request once it saturates (on the 4th request).
        assert decisions[:3] == [True] * 3
        assert decisions[3:] == [False, True] * 4 + [False]
        assert controller.report().reasons == {"delay_budget": 5}

    def test_backstop_stands_down_under_budget(self):
        controller = _controller(ramp_requests=2, duty_cycle=2)
        for _ in range(4):
            controller.admit(0, LEGIT, 2.0, now=0.0)
        # Still shedding (hysteresis) but the prediction is back under
        # budget: the duty cycle no longer applies.
        assert controller.admit(0, LEGIT, 0.8, now=0.0)


class TestAccounting:
    def test_lane_shed_counts_match_report(self):
        controller = _controller(lanes=2, ramp_requests=1)
        for _ in range(6):
            controller.admit(0, LEGIT, 2.0, now=0.0)
        assert controller.admit(1, LEGIT, 0.0, now=0.0)
        report = controller.report()
        assert controller.lane_shed_counts() == [
            report.lanes[0].shed,
            report.lanes[1].shed,
        ]
        assert report.admitted + report.shed == 7
        by_ip = report.admitted_by_ip.get(LEGIT, 0) + report.shed_by_ip.get(
            LEGIT, 0
        )
        assert by_ip == 7

    def test_peak_pressure_is_reported(self):
        controller = _controller(ramp_requests=4)
        for _ in range(2):
            controller.admit(0, LEGIT, 2.0, now=0.0)
        assert controller.report().lanes[0].peak_pressure == pytest.approx(
            0.5
        )

    def test_shed_fraction_of_unseen_ip_is_zero(self):
        assert _controller().report().shed_fraction("10.255.0.1") == 0.0

    def test_wall_metrics_record_reasons_and_phases(self):
        registry = MetricsRegistry()
        controller = _controller(metrics=registry, ramp_requests=1)
        for _ in range(4):
            controller.admit(0, LEGIT, 2.0, now=0.0)
        controller.admit(0, LEGIT, 0.1, now=0.0)
        snap = registry.snapshot()
        assert snap.get(
            "repro_ingress_shed_reason_total",
            {"lane": "0", "reason": "delay_budget"},
        ).value > 0
        assert snap.get(
            "repro_ingress_adaptive_transitions_total",
            {"lane": "0", "phase": "enter"},
        ).value == 1
        assert snap.get(
            "repro_ingress_adaptive_transitions_total",
            {"lane": "0", "phase": "exit"},
        ).value == 1
        assert snap.get(
            "repro_ingress_adaptive_shedding", {"lane": "0"}
        ).value == 0.0
        # Nondeterministic wall-clock domain, never the deterministic
        # snapshot.
        assert not [
            p
            for p in snap.deterministic().points
            if p.name.startswith("repro_ingress_adaptive")
        ]
