"""Unit tests for the graduated response ladder state machine."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs.registry import MetricsRegistry
from repro.overload.ladder import (
    LadderConfig,
    LadderStage,
    ResponseLadder,
    is_checkpoint,
    merge_ladder_states,
)

IP = "10.1.2.3"


def _ladder(**overrides) -> ResponseLadder:
    return ResponseLadder(LadderConfig(**overrides))


def _escalate(ladder: ResponseLadder, ip: str, verdicts: int, at=0.0):
    """Feed ``verdicts`` robot checkpoint verdicts for ``ip``."""
    for _ in range(verdicts):
        ladder.observe_verdict(ip, margin=-1.0, timestamp=at)


class TestCheckpoints:
    def test_powers_of_two_at_or_past_base(self):
        fires = [n for n in range(1, 70) if is_checkpoint(n, 4)]
        assert fires == [4, 8, 16, 32, 64]

    def test_base_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            LadderConfig(checkpoint_base=3)
        with pytest.raises(ValueError, match="power of two"):
            LadderConfig(checkpoint_base=1)


class TestConfigValidation:
    def test_threshold_order(self):
        with pytest.raises(ValueError, match="throttle <= captcha"):
            LadderConfig(throttle_points=3.0, captcha_points=2.0)
        with pytest.raises(ValueError, match="throttle <= captcha"):
            LadderConfig(captcha_points=5.0, block_points=4.0)

    def test_other_bounds(self):
        with pytest.raises(ValueError):
            LadderConfig(half_life=0.0)
        with pytest.raises(ValueError):
            LadderConfig(throttle_keep_one_in=1)
        with pytest.raises(ValueError):
            LadderConfig(challenge_patience=0)
        with pytest.raises(ValueError):
            LadderConfig(robot_weight=0.0)


class TestEvidence:
    def test_unknown_ip_allows(self):
        assert _ladder().gate(IP, 0.0) is LadderStage.ALLOW

    def test_human_verdicts_never_create_records(self):
        ladder = _ladder()
        for _ in range(50):
            ladder.observe_verdict(IP, margin=2.0, timestamp=0.0)
        assert ladder.export_state()["ips"] == {}

    def test_tie_margin_is_robot(self):
        # Matches the batch scorer's tie-to-robot rule.
        ladder = _ladder()
        ladder.observe_verdict(IP, margin=0.0, timestamp=0.0)
        assert ladder.export_state()["ips"][IP]["points"] == 1.0

    def test_stages_escalate_with_evidence(self):
        ladder = _ladder()  # thresholds 1 / 2 / 4
        _escalate(ladder, IP, 1)
        assert ladder.gate(IP, 0.0) is LadderStage.THROTTLE
        _escalate(ladder, IP, 1)
        assert ladder.gate(IP, 0.0) is LadderStage.CAPTCHA
        _escalate(ladder, IP, 2)
        assert ladder.gate(IP, 0.0) is LadderStage.BLOCK

    def test_stage_ranks_are_ordered(self):
        ranks = [
            LadderStage.ALLOW.rank,
            LadderStage.THROTTLE.rank,
            LadderStage.CAPTCHA.rank,
            LadderStage.BLOCK.rank,
        ]
        assert ranks == sorted(ranks) == [0, 1, 2, 3]


class TestDecay:
    def test_points_halve_per_whole_step(self):
        ladder = _ladder(half_life=100.0)
        _escalate(ladder, IP, 4, at=0.0)  # 4 points -> BLOCK
        assert ladder.gate(IP, 50.0) is LadderStage.BLOCK  # no step yet
        assert ladder.gate(IP, 150.0) is LadderStage.CAPTCHA  # 2.0
        assert ladder.gate(IP, 250.0) is LadderStage.THROTTLE  # 1.0

    def test_anchor_advances_in_whole_steps_only(self):
        ladder = _ladder(half_life=100.0)
        _escalate(ladder, IP, 4, at=0.0)
        ladder.gate(IP, 250.0)
        record = ladder.export_state()["ips"][IP]
        assert record["anchor"] == 200.0
        assert record["points"] == 1.0

    def test_fully_decayed_ip_allows_again(self):
        ladder = _ladder(half_life=10.0)
        _escalate(ladder, IP, 1, at=0.0)
        assert ladder.gate(IP, 1000.0) is LadderStage.ALLOW


class TestThrottle:
    def test_admits_one_in_n(self):
        ladder = _ladder(throttle_keep_one_in=4)
        _escalate(ladder, IP, 1)
        stages = [ladder.gate(IP, 0.0) for _ in range(8)]
        # The batcher must keep seeing evidence: every 4th request
        # passes through to detection.
        assert stages == [
            LadderStage.THROTTLE,
            LadderStage.THROTTLE,
            LadderStage.THROTTLE,
            LadderStage.ALLOW,
        ] * 2
        record = ladder.export_state()["ips"][IP]
        assert record["throttled"] == 6


class TestCaptcha:
    def test_pass_exonerates(self):
        ladder = _ladder()
        _escalate(ladder, IP, 2)
        assert ladder.gate(IP, 0.0) is LadderStage.CAPTCHA
        ladder.note_captcha_result(IP, passed=True, timestamp=1.0)
        assert ladder.gate(IP, 1.0) is LadderStage.ALLOW

    def test_fail_condemns(self):
        ladder = _ladder()
        _escalate(ladder, IP, 2)
        ladder.note_captcha_result(IP, passed=False, timestamp=1.0)
        assert ladder.gate(IP, 1.0) is LadderStage.BLOCK

    def test_result_for_unknown_ip_is_a_no_op(self):
        ladder = _ladder()
        ladder.note_captcha_result(IP, passed=False, timestamp=0.0)
        assert ladder.export_state()["ips"] == {}

    def test_unanswered_challenges_escalate_to_block(self):
        ladder = _ladder(challenge_patience=3)
        _escalate(ladder, IP, 2)
        stages = [ladder.gate(IP, float(i)) for i in range(6)]
        assert stages[:3] == [LadderStage.CAPTCHA] * 3
        # Hammering past the patience budget is evidence in itself.
        assert stages[3:] == [LadderStage.BLOCK] * 3

    def test_solving_resets_the_patience_streak(self):
        ladder = _ladder(challenge_patience=3)
        _escalate(ladder, IP, 2)
        for i in range(3):
            assert ladder.gate(IP, float(i)) is LadderStage.CAPTCHA
        ladder.note_captcha_result(IP, passed=False, timestamp=3.0)
        record = ladder.export_state()["ips"][IP]
        assert record["stage"] == "block"


class TestTransitionsAndExport:
    def test_transitions_record_each_stage_change(self):
        ladder = _ladder()
        _escalate(ladder, IP, 1, at=10.0)
        _escalate(ladder, IP, 1, at=20.0)
        _escalate(ladder, IP, 2, at=30.0)
        state = ladder.export_state()
        assert [t[2:] for t in state["transitions"]] == [
            ["allow", "throttle"],
            ["throttle", "captcha"],
            ["captcha", "block"],
        ]
        assert [t[:2] for t in state["transitions"]] == [
            [10.0, IP], [20.0, IP], [30.0, IP]
        ]

    def test_export_is_canonical_json(self):
        ladder = _ladder()
        _escalate(ladder, "10.0.0.2", 2)
        _escalate(ladder, "10.0.0.1", 1)
        state = ladder.export_state()
        assert list(state["ips"]) == sorted(state["ips"])
        json.dumps(state, sort_keys=True)  # round-trips

    def test_merge_unions_disjoint_partitions(self):
        a, b = _ladder(), _ladder()
        _escalate(a, "10.0.0.1", 1, at=5.0)
        _escalate(b, "10.0.0.2", 2, at=3.0)
        merged = merge_ladder_states([a.export_state(), b.export_state()])
        assert sorted(merged["ips"]) == ["10.0.0.1", "10.0.0.2"]
        # Transitions interleave on (timestamp, ip).
        assert [t[0] for t in merged["transitions"]] == sorted(
            t[0] for t in merged["transitions"]
        )

    def test_merge_order_does_not_matter(self):
        a, b = _ladder(), _ladder()
        _escalate(a, "10.0.0.1", 1, at=5.0)
        _escalate(b, "10.0.0.2", 2, at=3.0)
        one = merge_ladder_states([a.export_state(), b.export_state()])
        other = merge_ladder_states([b.export_state(), a.export_state()])
        assert json.dumps(one, sort_keys=True) == json.dumps(
            other, sort_keys=True
        )

    def test_merge_refuses_overlapping_partitions(self):
        a, b = _ladder(), _ladder()
        _escalate(a, IP, 1)
        _escalate(b, IP, 1)
        with pytest.raises(ValueError, match="overlap"):
            merge_ladder_states([a.export_state(), b.export_state()])


class TestMetricsAndPickling:
    def test_metric_families(self):
        registry = MetricsRegistry()
        ladder = _ladder(throttle_keep_one_in=2)
        ladder.attach_metrics(registry, {"node": "n0", "shard": "0"})
        ladder.observe_verdict(IP, margin=1.0, timestamp=0.0)
        _escalate(ladder, IP, 1)
        ladder.gate(IP, 0.0)
        snap = registry.snapshot()
        labels = {"node": "n0", "shard": "0"}
        assert snap.get(
            "repro_ladder_verdicts_total", {**labels, "verdict": "human"}
        ).value == 1
        assert snap.get(
            "repro_ladder_verdicts_total", {**labels, "verdict": "robot"}
        ).value == 1
        assert snap.get(
            "repro_ladder_transitions_total",
            {**labels, "src": "allow", "dst": "throttle"},
        ).value == 1
        assert snap.get(
            "repro_ladder_gated_total", {**labels, "stage": "throttle"}
        ).value == 1

    def test_ladder_pickles_with_its_registry(self):
        # NodeShard state crosses process boundaries; the ladder rides
        # along, so it must survive a pickle round-trip intact.
        ladder = _ladder()
        ladder.attach_metrics(MetricsRegistry(), {"node": "n0"})
        _escalate(ladder, IP, 2)
        clone = pickle.loads(pickle.dumps(ladder))
        assert clone.export_state() == ladder.export_state()
        assert clone.gate(IP, 0.0) is LadderStage.CAPTCHA
