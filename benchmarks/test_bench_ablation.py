"""Ablation benches for the design choices DESIGN.md calls out.

1. decoy count ``m`` vs blind-fetcher catch probability (§2.1's m/(m+1));
2. CSS-only vs mouse-only vs combined set-algebra classification quality
   (§3.1's "quick" vs "accurate" trade-off);
3. AdaBoost rounds vs accuracy (the 200-round choice in §4.2);
4. single-attribute classifiers vs the full 12 (attribute selection).
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_ML_SEED
from repro.detection.verdict import Label
from repro.instrument.js_beacon import (
    build_beacon_script,
    extract_all_script_urls,
)
from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.dataset import build_matrix
from repro.ml.evaluate import accuracy, train_test_split
from repro.ml.features import ATTRIBUTE_NAMES
from repro.util.rng import RngStream


def test_bench_decoy_count_ablation(benchmark):
    """Empirical blind-fetch catch rate vs the m/(m+1) guarantee."""
    rng = RngStream(11, "ablation-decoys")
    trials = 700

    def measure(m: int) -> float:
        wrong = 0
        for i in range(trials):
            script = build_beacon_script(
                rng.split(f"m{m}-{i}"), "h.com", decoys=m
            )
            urls = extract_all_script_urls(script.source)
            if rng.choice(urls) != f"http://h.com{script.real_image_path}":
                wrong += 1
        return wrong / trials

    results = benchmark.pedantic(
        lambda: {m: measure(m) for m in (1, 2, 4, 8)},
        rounds=1, iterations=1,
    )

    print("\nAblation: decoy count m vs blind-fetcher catch probability")
    print(f"{'m':>3} {'measured':>9} {'m/(m+1)':>9}")
    for m, caught in results.items():
        expected = m / (m + 1)
        print(f"{m:>3} {caught:>9.3f} {expected:>9.3f}")
        assert abs(caught - expected) < 0.06
        benchmark.extra_info[f"catch@m={m}"] = round(caught, 3)


def test_bench_classifier_ablation(benchmark, codeen_week):
    """CSS-only vs mouse-only vs combined classification vs ground truth."""

    def evaluate():
        sessions = [s for s in codeen_week.sessions if s.true_label]
        out = {}
        for name, rule in (
            ("css_only", lambda s: s.in_css_set),
            ("mouse_only", lambda s: s.in_mouse_set),
            ("set_algebra", lambda s: s.is_human_by_set_algebra),
        ):
            correct = sum(
                1
                for s in sessions
                if rule(s) == (s.true_label == "human")
            )
            human_calls = [s for s in sessions if rule(s)]
            false_pos = sum(
                1 for s in human_calls if s.true_label == "robot"
            )
            out[name] = (
                correct / len(sessions),
                false_pos / len(human_calls) if human_calls else 0.0,
            )
        return out

    results = benchmark(evaluate)

    print("\nAblation: single probes vs the combined set algebra")
    print(f"{'classifier':>12} {'accuracy':>9} {'FP rate':>9}")
    for name, (acc, fpr) in results.items():
        print(f"{name:>12} {acc:>9.3f} {fpr:>9.3f}")
        benchmark.extra_info[f"{name}_accuracy"] = round(acc, 4)

    # The combination is at least as accurate as either probe alone,
    # and mouse-only never has false positives (keys can't be forged).
    assert results["set_algebra"][0] >= results["css_only"][0] - 1e-9
    assert results["mouse_only"][1] == 0.0


def test_bench_adaboost_rounds_ablation(benchmark, ml_dataset):
    """Accuracy as boosting rounds grow: why the paper ran 200."""
    train, test = train_test_split(
        ml_dataset.examples, RngStream(BENCH_ML_SEED, "split")
    )
    x_train, y_train = build_matrix(train, 160)
    x_test, y_test = build_matrix(test, 160)

    def sweep():
        out = {}
        for rounds in (5, 25, 100, 200):
            model = AdaBoostClassifier(n_rounds=rounds).fit(x_train, y_train)
            out[rounds] = accuracy(model.predict(x_test), y_test)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nAblation: AdaBoost rounds vs test accuracy (N=160)")
    for rounds, acc in results.items():
        print(f"  rounds={rounds:>4}: {acc:.3%}")
        benchmark.extra_info[f"acc@{rounds}"] = round(acc, 4)

    assert results[200] >= results[5] - 0.02


def test_bench_single_attribute_ablation(benchmark, ml_dataset):
    """Any single attribute vs the full 12 (§4.2: selection matters)."""
    train, test = train_test_split(
        ml_dataset.examples, RngStream(BENCH_ML_SEED, "split")
    )
    x_train, y_train = build_matrix(train, 160)
    x_test, y_test = build_matrix(test, 160)

    def evaluate():
        full = AdaBoostClassifier(n_rounds=100).fit(x_train, y_train)
        full_acc = accuracy(full.predict(x_test), y_test)
        singles = {}
        for i, name in enumerate(ATTRIBUTE_NAMES):
            model = AdaBoostClassifier(n_rounds=25).fit(
                x_train[:, [i]], y_train
            )
            singles[name] = accuracy(
                model.predict(x_test[:, [i]]), y_test
            )
        return full_acc, singles

    full_acc, singles = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    best_single = max(singles.items(), key=lambda kv: kv[1])
    print("\nAblation: single attributes vs the full 12")
    print(f"  full 12 attributes: {full_acc:.3%}")
    for name, acc in sorted(singles.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {name:>18}: {acc:.3%}")

    benchmark.extra_info["full"] = round(full_acc, 4)
    benchmark.extra_info["best_single"] = (
        f"{best_single[0]}={best_single[1]:.4f}"
    )
    assert full_acc >= best_single[1]
