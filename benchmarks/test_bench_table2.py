"""Benchmark: regenerate Table 2 (attributes + measured contributions).

Paper: 12 attributes; "RESPCODE_3XX%, REFERRER% and UNSEEN_REFERRER%
turned out to be the most contributing attributes."
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_ML_SEED
from repro.experiments.table2 import PAPER_TOP_ATTRIBUTES, Table2Result
from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.dataset import build_matrix
from repro.ml.evaluate import train_test_split
from repro.ml.importance import attribute_contributions
from repro.util.rng import RngStream


def test_bench_table2(benchmark, ml_dataset):
    train, _ = train_test_split(
        ml_dataset.examples, RngStream(BENCH_ML_SEED, "split")
    )
    x_train, y_train = build_matrix(train, 160)
    model = AdaBoostClassifier(n_rounds=200).fit(x_train, y_train)

    contributions = benchmark(attribute_contributions, model)

    result = Table2Result(contributions=contributions, checkpoint=160)
    print("\n" + result.render())

    top6 = result.top(6)
    benchmark.extra_info["top_attributes"] = ", ".join(top6)

    # Shape: the referrer-family attributes the paper highlights are
    # heavily used by the learned ensemble.
    referrer_family_hits = sum(
        1 for name in PAPER_TOP_ATTRIBUTES if name in top6
    )
    assert referrer_family_hits >= 1
    weights = dict(contributions)
    assert weights["REFERRER%"] + weights["UNSEEN_REFERRER%"] > 0.05
