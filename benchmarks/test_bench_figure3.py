"""Benchmark: regenerate Figure 3 (2005 abuse-complaint timeline).

Paper: complaints rise to ~9-10/month by July, collapse after the
late-August deployment of browser testing + aggressive rate limiting
(two robot complaints in four months), and stay at zero after the
January 2006 mouse-detection deployment.
"""

from __future__ import annotations

from repro.experiments.figure3 import Figure3Result
from repro.workload.complaints import (
    generate_timeline,
    measure_robot_suppression,
)


def test_bench_figure3(benchmark, codeen_week):
    suppression = measure_robot_suppression(codeen_week.sessions)

    timeline = benchmark(
        generate_timeline, None, suppression
    )

    result = Figure3Result(
        timeline=timeline, measured_suppression=suppression
    )
    print("\n" + result.render())

    benchmark.extra_info["measured_suppression"] = round(suppression, 4)
    benchmark.extra_info["peak_month"] = timeline.peak_month().month
    benchmark.extra_info["post_deploy_robot_complaints"] = (
        timeline.robot_complaints_after(8)
    )

    # Shape: the measured detector is effective enough to collapse the
    # complaint volume after deployment, with the peak in the summer.
    assert suppression > 0.9
    peak_index = [p.month for p in timeline.points].index(
        timeline.peak_month().month
    )
    assert peak_index < 8
    pre_deploy = sum(p.robot for p in timeline.points[4:8])
    assert timeline.robot_complaints_after(8) < pre_deploy / 3
