"""Benchmark: regenerate Table 1 (the CoDeeN session census).

Paper (929,922 sessions): CSS 28.9%, JS 27.1%, mouse 22.3%, CAPTCHA 9.1%,
hidden links 1.0%, UA mismatch 0.7%; S_H = 24.2%, max FPR 2.4%.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_SEED, BENCH_SESSIONS
from repro.detection.set_algebra import SessionSets
from repro.experiments.table1 import PAPER_TABLE1, Table1Result


def test_bench_table1(benchmark, codeen_week):
    def reduce_census():
        sets = SessionSets.from_sessions(codeen_week.sessions)
        return sets.summary()

    summary = benchmark(reduce_census)

    result = Table1Result(result=codeen_week)
    print("\n" + result.render())

    measured = result.measured_percentages()
    benchmark.extra_info["n_sessions"] = BENCH_SESSIONS
    benchmark.extra_info["seed"] = BENCH_SEED
    for key, value in measured.items():
        benchmark.extra_info[key] = round(value, 2)

    # Shape assertions: every census row lands in the paper's ballpark.
    assert abs(measured["css_downloads"] - PAPER_TABLE1["css_downloads"]) < 5
    assert abs(measured["js_executions"] - PAPER_TABLE1["js_executions"]) < 5
    assert abs(
        measured["mouse_movements"] - PAPER_TABLE1["mouse_movements"]
    ) < 5
    assert abs(measured["captcha_passes"] - PAPER_TABLE1["captcha_passes"]) < 3
    assert measured["max_false_positive_rate"] < 6.0
    assert summary.total_sessions > 0
