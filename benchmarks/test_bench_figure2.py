"""Benchmark: regenerate Figure 2 (CDF of requests needed to detect).

Paper: mouse events — 80% within 20 requests, 95% within 57; CSS — 95%
within 19, 99% within 48; JS files track CSS.
"""

from __future__ import annotations

from repro.analysis.cdf import detection_cdfs
from repro.experiments.figure2 import Figure2Result


def test_bench_figure2(benchmark, codeen_week):
    cdfs = benchmark(detection_cdfs, codeen_week.latencies)

    result = Figure2Result(result=codeen_week, cdfs=cdfs)
    print("\n" + result.render())

    readings = result.readings()
    for (curve, x), value in readings.items():
        benchmark.extra_info[f"{curve}@{x}"] = round(value, 3)

    # Shape: the paper's anchor points within tolerance.
    assert readings[("mouse", 20)] > 0.65      # paper 0.80
    assert readings[("mouse", 57)] > 0.90      # paper 0.95
    assert readings[("css", 19)] > 0.88        # paper 0.95
    assert readings[("css", 48)] > 0.96        # paper 0.99
    # Ordering: browser test is the quick scheme.
    assert cdfs.css.quantile(0.95) < cdfs.mouse.quantile(0.95)
