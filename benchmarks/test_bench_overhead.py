"""Benchmark: the §3.2 overhead study.

Paper: a ~1KB obfuscated beacon script generated in ~144µs on a 2GHz P4;
fake JavaScript and CSS files are ~0.3% of CoDeeN's total bandwidth.

Unlike the workload benches, script generation is a true hot-path
microbenchmark: the proxy runs it for every HTML page it serves.
"""

from __future__ import annotations

import itertools

from repro.experiments.overhead import OverheadResult
from repro.instrument.js_beacon import build_beacon_script
from repro.instrument.obfuscator import obfuscate_beacon
from repro.util.rng import RngStream


def test_bench_beacon_generation(benchmark, codeen_week):
    rng = RngStream(99, "bench-overhead")
    counter = itertools.count()

    def generate_one():
        i = next(counter)
        script = build_beacon_script(
            rng.split(f"s{i}"), "www.example.com", decoys=4
        )
        source, _ = obfuscate_beacon(
            script.source, script.handler_expression, rng.split(f"o{i}")
        )
        return source

    source = benchmark(generate_one)
    size = len(source.encode("utf-8"))

    # benchmark.stats is None in smoke mode (--benchmark-disable): the
    # function ran once for correctness but nothing was timed.
    if benchmark.stats is not None:
        result = OverheadResult(
            mean_generation_seconds=benchmark.stats.stats.mean,
            mean_script_bytes=float(size),
            bandwidth_fraction=codeen_week.stats.beacon_bandwidth_fraction,
            samples=int(benchmark.stats.stats.rounds),
        )
        print("\n" + result.render())
        print(
            "markup growth share: "
            f"{codeen_week.stats.markup_bandwidth_fraction:.2%} "
            "(rewritten-page bytes, not counted by the paper's 0.3%)"
        )
        assert benchmark.stats.stats.mean < 0.005

    benchmark.extra_info["script_bytes"] = size
    benchmark.extra_info["beacon_bandwidth_fraction"] = round(
        codeen_week.stats.beacon_bandwidth_fraction, 5
    )

    # Shape: ~1KB script generated fast; beacon bandwidth well under 2%.
    assert 400 < size < 4000
    assert codeen_week.stats.beacon_bandwidth_fraction < 0.02
