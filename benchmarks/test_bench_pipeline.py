"""Sharded-pipeline throughput: the costs and wins of this PR.

Two families of measurement:

* **sessions/sec through the detection pipeline at shard counts
  1 / 2 / 8** — the sharding refactor must be free at shards=1 and
  scale-neutral at higher counts (it buys partition structure, not
  single-thread speed; the win arrives with multiprocess executors);
* **AdaBoost scoring throughput, per-stump loop vs. packed-array
  vectorized pass** — the §4.2 ensemble at 200 rounds over a
  10k-session matrix, where the vectorized path must win by ≥ 5×.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.detection.sharded import ShardedDetectionService
from repro.http.headers import Headers
from repro.http.message import Method, Request
from repro.http.uri import Url
from repro.instrument.keys import InstrumentationRegistry
from repro.ml.adaboost import AdaBoostModel
from repro.ml.batch import BatchScorer
from repro.ml.stump import DecisionStump
from repro.proxy.network import ProxyNetwork
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE

BENCH_PIPELINE_SESSIONS = 120
SCORING_SESSIONS = 10_000
SCORING_ROUNDS = 200
SPEEDUP_FLOOR = 5.0

_SITE = SiteGenerator(SiteConfig(n_pages=16)).generate(RngStream(19, "bench"))
_ORIGIN = OriginServer(_SITE)
_ENTRY = f"http://{_SITE.host}{_SITE.home_path}"


def _run_workload(shards: int):
    network = ProxyNetwork(
        origins={_SITE.host: _ORIGIN},
        rng=RngStream(41, "bench-net"),
        n_nodes=2,
    )
    engine = WorkloadEngine(
        network,
        SMOKE,
        _ENTRY,
        RngStream(53, "bench-wl"),
        WorkloadConfig(
            n_sessions=BENCH_PIPELINE_SESSIONS,
            captcha_enabled=False,
            shards=shards,
        ),
    )
    return engine.run()


@pytest.mark.parametrize("shards", [1, 2, 8])
def test_bench_pipeline_sessions_per_second(benchmark, shards):
    """Full pipeline throughput at each shard count."""
    result = benchmark.pedantic(
        lambda: _run_workload(shards), rounds=3, iterations=1
    )
    assert result.analyzable_count > 0
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["sessions"] = BENCH_PIPELINE_SESSIONS
    benchmark.extra_info["requests"] = result.stats.requests
    # benchmark.stats is None in smoke mode (--benchmark-disable).
    if benchmark.stats is not None and benchmark.stats.stats.mean:
        benchmark.extra_info["sessions_per_sec"] = round(
            BENCH_PIPELINE_SESSIONS / benchmark.stats.stats.mean, 1
        )


def _detection_batch(n_requests: int = 4000) -> list[Request]:
    requests = []
    for index in range(n_requests):
        client = index % 400
        requests.append(
            Request(
                method=Method.GET,
                url=Url.parse(f"http://{_SITE.host}/p{index % 16}.html"),
                client_ip=f"10.1.{client // 256}.{client % 256}",
                headers=Headers([("User-Agent", f"agent-{client % 5}")]),
                timestamp=float(index),
            )
        )
    return requests


@pytest.mark.parametrize("shards", [1, 2, 8])
def test_bench_handle_batch(benchmark, shards):
    """Batch request handling through the sharded service alone."""
    requests = _detection_batch()

    def run():
        service = ShardedDetectionService(
            InstrumentationRegistry(), n_shards=shards
        )
        service.keep_event_log = False
        return service.handle_batch(requests)

    outcomes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(outcomes) == len(requests)
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["requests"] = len(requests)


def _scoring_fixture() -> tuple[AdaBoostModel, np.ndarray]:
    rng = np.random.default_rng(29)
    model = AdaBoostModel(n_features=12)
    for _ in range(SCORING_ROUNDS):
        model.stumps.append(
            DecisionStump(
                feature=int(rng.integers(12)),
                threshold=float(rng.uniform(0, 100)),
                polarity=int(rng.choice((-1, 1))),
            )
        )
        model.alphas.append(float(rng.uniform(0.05, 1.5)))
    matrix = rng.uniform(0, 100, size=(SCORING_SESSIONS, 12))
    return model, matrix


def test_bench_adaboost_score_vectorized(benchmark):
    """Packed-array scoring of 10k sessions × 200 rounds."""
    model, matrix = _scoring_fixture()
    model.compile()  # pay the one-time pack outside the timed region
    margins = benchmark(lambda: model.score(matrix))
    assert margins.shape == (SCORING_SESSIONS,)
    benchmark.extra_info["rounds"] = SCORING_ROUNDS
    benchmark.extra_info["sessions"] = SCORING_SESSIONS


def test_bench_adaboost_score_loop(benchmark):
    """The pre-vectorization per-stump loop on the same inputs."""
    model, matrix = _scoring_fixture()
    margins = benchmark.pedantic(
        lambda: model.score_loop(matrix), rounds=3, iterations=1
    )
    assert margins.shape == (SCORING_SESSIONS,)
    benchmark.extra_info["rounds"] = SCORING_ROUNDS
    benchmark.extra_info["sessions"] = SCORING_SESSIONS


def test_vectorized_scoring_speedup_floor(request):
    """Acceptance: vectorized beats the loop ≥ 5× on 10k × 200."""
    model, matrix = _scoring_fixture()
    model.compile()
    np.testing.assert_allclose(
        model.score(matrix), model.score_loop(matrix), atol=1e-9
    )
    if request.config.getoption("benchmark_disable"):
        pytest.skip(
            "smoke mode (--benchmark-disable): equivalence checked, "
            "wall-clock floor not asserted"
        )

    def best_of(fn, repeats: int = 5) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(matrix)
            best = min(best, time.perf_counter() - start)
        return best

    loop_time = best_of(model.score_loop)
    vectorized_time = best_of(model.score)
    speedup = loop_time / vectorized_time
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized scoring only {speedup:.1f}x faster than the "
        f"per-stump loop (need >= {SPEEDUP_FLOOR}x): "
        f"loop {loop_time * 1e3:.2f}ms vs vectorized "
        f"{vectorized_time * 1e3:.2f}ms"
    )


def test_bench_batch_scorer_flush(benchmark):
    """BatchScorer: buffer 10k sessions, score one matrix per flush."""
    model, matrix = _scoring_fixture()
    model.compile()

    def run():
        scorer = BatchScorer(model, batch_size=SCORING_SESSIONS + 1)
        for row_index in range(SCORING_SESSIONS):
            scorer.add(f"s{row_index}", matrix[row_index])
        return scorer.flush()

    verdicts = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(verdicts) == SCORING_SESSIONS
    benchmark.extra_info["sessions"] = SCORING_SESSIONS
