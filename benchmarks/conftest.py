"""Benchmark fixtures.

The experiment benches reduce shared workload runs (the expensive part is
executed once per session-scope fixture); the ``benchmark`` fixture then
times the *reduction* of measurements into each table/figure, and every
bench prints the regenerated artifact so ``pytest benchmarks/
--benchmark-only -s`` reproduces the paper's evaluation section.

Scale knobs (env-free, edit here): ``BENCH_SESSIONS`` sessions for the
CoDeeN week (paper: 929,922), ``BENCH_ML_SESSIONS`` for the §4.2 dataset
(paper: 167,246).
"""

from __future__ import annotations

import pytest

BENCH_SESSIONS = 1200
BENCH_ML_SESSIONS = 1200
BENCH_SEED = 2006
BENCH_ML_SEED = 4242


@pytest.fixture(scope="session")
def codeen_week():
    """The shared CoDeeN-week run behind Table 1 / Figure 2 / overhead."""
    from repro.experiments.table1 import run_codeen_week_cached

    return run_codeen_week_cached(BENCH_SESSIONS, BENCH_SEED)


@pytest.fixture(scope="session")
def ml_dataset():
    """The shared §4.2 dataset behind Figure 4 / Table 2."""
    from repro.experiments.figure4 import build_ml_dataset

    return build_ml_dataset(BENCH_ML_SESSIONS, BENCH_ML_SEED)
