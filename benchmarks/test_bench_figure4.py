"""Benchmark: regenerate Figure 4 (AdaBoost accuracy vs request count).

Paper: 42,975 human + 124,271 robot sessions, 200 rounds, classifiers at
N = 20..160; test accuracy 91-95%, improving with N.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_ML_SEED
from repro.experiments.figure4 import Figure4Result
from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.dataset import DEFAULT_CHECKPOINTS, build_matrix
from repro.ml.evaluate import EvaluationResult, accuracy, train_test_split
from repro.util.rng import RngStream


def test_bench_figure4(benchmark, ml_dataset):
    train, test = train_test_split(
        ml_dataset.examples, RngStream(BENCH_ML_SEED, "split")
    )

    def train_all_checkpoints():
        trainer = AdaBoostClassifier(n_rounds=200)
        evaluations = []
        models = {}
        for checkpoint in DEFAULT_CHECKPOINTS:
            x_train, y_train = build_matrix(train, checkpoint)
            x_test, y_test = build_matrix(test, checkpoint)
            model = trainer.fit(x_train, y_train)
            models[checkpoint] = model
            evaluations.append(
                EvaluationResult(
                    checkpoint=checkpoint,
                    train_accuracy=accuracy(model.predict(x_train), y_train),
                    test_accuracy=accuracy(model.predict(x_test), y_test),
                    rounds=model.rounds,
                )
            )
        return evaluations, models

    evaluations, models = benchmark.pedantic(
        train_all_checkpoints, rounds=1, iterations=1
    )

    result = Figure4Result(
        evaluations=evaluations,
        models=models,
        n_humans=len(ml_dataset.humans),
        n_robots=len(ml_dataset.robots),
    )
    print("\n" + result.render())

    for evaluation in evaluations:
        benchmark.extra_info[f"test@{evaluation.checkpoint}"] = round(
            evaluation.test_accuracy, 4
        )

    accuracies = [e.test_accuracy for e in evaluations]
    # Shape: accuracy in the paper's band, and the late classifiers beat
    # the earliest one (the paper's "improves as the classifier sees more
    # requests").
    assert all(0.88 <= a <= 1.0 for a in accuracies)
    assert max(accuracies[3:]) >= accuracies[0]
    # Train accuracy should dominate test accuracy (Figure 4's two curves).
    for evaluation in evaluations:
        assert evaluation.train_accuracy >= evaluation.test_accuracy - 0.05
