"""Ingress throughput: executor scaling on the 10k-session shard suite.

Two claims to pin down:

* the ingress is semantics-free — serial, thread and process executors
  produce identical reductions on the same admitted stream (checked
  here on a small trace so the property rides along in smoke mode);
* the **process** executor actually closes the GIL gap: replaying the
  10k-session suite through per-node lanes in separate interpreters
  beats the thread path whenever more than one core is available.
  (On a single-core runner the comparison is skipped — there is no
  parallelism to demonstrate, only scheduler noise.)
"""

from __future__ import annotations

import os
import time

import pytest

from repro.http.message import Method
from repro.http.uri import Url
from repro.proxy.network import ProxyNetwork
from repro.trace.clf import TraceRecord
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream

N_NODES = 4
SHARDS = 4
SUITE_SESSIONS = 10_000
SUITE_REQUESTS_PER_SESSION = 12
BENCH_SESSIONS = 1_000


def _speedup_floor(cores: int) -> float:
    """What "real parallel speedup" must mean on this machine.

    On >= 4 cores the four lanes genuinely spread out and 1.1x is a
    conservative floor; on 2-3 cores lanes contend with the admission
    loop and each other, so the assertion relaxes to strictly-better —
    still a real win over the GIL, without flaking on scheduler noise.
    """
    return 1.1 if cores >= 4 else 1.0


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _suite_trace(n_sessions: int) -> list[TraceRecord]:
    """Synthetic round-robin trace: n sessions, timestamp-ordered."""
    records = []
    for step in range(SUITE_REQUESTS_PER_SESSION):
        for session in range(n_sessions):
            records.append(
                TraceRecord(
                    client_ip=(
                        f"10.{session // 65536}."
                        f"{(session // 256) % 256}.{session % 256}"
                    ),
                    timestamp=step * 40.0 + session * 0.001,
                    method=Method.GET,
                    url=Url.parse(
                        f"http://suite.example/p{(session + step) % 32}.html"
                    ),
                    status=200,
                    size=2048,
                    user_agent=f"agent-{session % 17}",
                )
            )
    return records


def _replay(records: list[TraceRecord], **config_kwargs):
    network = ProxyNetwork(
        origins={},
        rng=RngStream(0, "bench-replay"),
        n_nodes=N_NODES,
        instrument_enabled=False,
    )
    engine = TraceReplayEngine(
        network,
        ReplayConfig(assume_sorted=True, shards=SHARDS, **config_kwargs),
    )
    return engine.replay(records)


def test_ingress_executors_equivalent():
    """Smoke-safe acceptance: all three executors reduce identically."""
    records = _suite_trace(400)
    baseline = _replay(records)
    for executor in ("serial", "thread", "process"):
        result = _replay(records, executor=executor, queue_depth=1024)
        assert result.summary == baseline.summary
        assert result.kind_census() == baseline.kind_census()
        assert result.requests_replayed == baseline.requests_replayed


def test_ingress_lane_counts_equivalent():
    """Smoke-safe acceptance: per-shard lanes reduce identically to
    per-node lanes — lane granularity is a topology knob only."""
    records = _suite_trace(400)
    baseline = _replay(records, executor="serial", queue_depth=1024)
    for executor in ("serial", "thread", "process"):
        result = _replay(
            records,
            executor=executor,
            queue_depth=1024,
            lanes_per_node=SHARDS,
        )
        assert result.summary == baseline.summary
        assert result.kind_census() == baseline.kind_census()
        assert result.requests_replayed == baseline.requests_replayed


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_bench_ingress_replay(benchmark, executor):
    """Replay throughput per executor on a 1k-session slice."""
    records = _suite_trace(BENCH_SESSIONS)

    result = benchmark.pedantic(
        lambda: _replay(records, executor=executor, queue_depth=4096),
        rounds=2,
        iterations=1,
    )
    assert result.requests_replayed == len(records)
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["requests"] = len(records)
    benchmark.extra_info["lanes"] = N_NODES
    if benchmark.stats is not None and benchmark.stats.stats.mean:
        benchmark.extra_info["requests_per_sec"] = round(
            len(records) / benchmark.stats.stats.mean
        )


def test_process_executor_beats_thread_on_shard_suite(request):
    """Acceptance: real parallel speedup of process over thread lanes.

    The thread path is GIL-bound — four lanes of pure-Python detection
    work serialize onto one core no matter how many exist.  The process
    path gives each lane its own interpreter, so with >= 2 cores it must
    win wall-clock on the 10k-session suite.
    """
    if request.config.getoption("benchmark_disable"):
        pytest.skip(
            "smoke mode (--benchmark-disable): equivalence checked in "
            "test_ingress_executors_equivalent, wall-clock not asserted"
        )
    if _cores() < 2:
        pytest.skip(
            f"only {_cores()} core(s) available: no parallelism to "
            "demonstrate, only scheduler noise"
        )

    records = _suite_trace(SUITE_SESSIONS)

    def best_of(executor: str, repeats: int = 2) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = _replay(
                records, executor=executor, queue_depth=8192
            )
            best = min(best, time.perf_counter() - start)
            assert result.requests_replayed == len(records)
        return best

    thread_time = best_of("thread")
    process_time = best_of("process")
    speedup = thread_time / process_time
    floor = _speedup_floor(_cores())
    assert speedup > floor, (
        f"process executor only {speedup:.2f}x the thread path on "
        f"{_cores()} cores (need > {floor}x): thread "
        f"{thread_time:.2f}s vs process {process_time:.2f}s"
    )


def test_per_shard_lanes_beat_per_node_lanes(request):
    """Acceptance: lifting lane granularity to the shard level wins.

    With ``lanes_per_node == SHARDS`` the process executor runs
    ``N_NODES * SHARDS`` lanes instead of ``N_NODES`` — on a runner
    with more cores than nodes, the finer partition must improve
    sessions/sec over the per-node-lane baseline.  Below that core
    count the extra lanes only multiply interpreter overhead, so the
    comparison is skipped rather than asserted on scheduler noise.
    """
    if request.config.getoption("benchmark_disable"):
        pytest.skip(
            "smoke mode (--benchmark-disable): lane equivalence checked "
            "in test_ingress_lane_counts_equivalent, wall-clock not "
            "asserted"
        )
    if _cores() <= N_NODES:
        pytest.skip(
            f"only {_cores()} core(s) for {N_NODES} per-node lanes: "
            "per-shard lanes cannot spread onto additional cores here"
        )

    records = _suite_trace(SUITE_SESSIONS)

    def best_of(lanes_per_node: int, repeats: int = 2) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = _replay(
                records,
                executor="process",
                queue_depth=8192,
                lanes_per_node=lanes_per_node,
            )
            best = min(best, time.perf_counter() - start)
            assert result.requests_replayed == len(records)
        return best

    per_node = best_of(1)
    per_shard = best_of(SHARDS)
    speedup = per_node / per_shard
    assert speedup > 1.0, (
        f"per-shard lanes only {speedup:.2f}x the per-node layout on "
        f"{_cores()} cores: {N_NODES} lanes {per_node:.2f}s vs "
        f"{N_NODES * SHARDS} lanes {per_shard:.2f}s"
    )
