#!/usr/bin/env python
"""Perf trajectory: pin this PR's ingress-suite numbers into the repo.

Replays the 10k-session synthetic shard suite (the same trace
``test_bench_ingress`` scales on) through the pipelined ingress and
writes throughput (sessions/sec, requests/sec) plus peak RSS to a
committed ``BENCH_<n>.json``.  One file per PR builds the in-repo
trajectory ROADMAP asks for: regressions become visible as a diff, not
just a transient CI artifact.

Optionally exports the run's metrics snapshot (canonical JSON and
Prometheus text) so CI can archive the full instrument readout next to
the benchmark numbers::

    PYTHONPATH=src python benchmarks/bench_trajectory.py \
        --out benchmarks/BENCH_6.json \
        --metrics-out metrics.json --prom-out metrics.prom

Numbers are machine-dependent by nature; the committed file records the
environment (python, cores) alongside them so trajectory diffs are read
in context.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)
sys.path.insert(0, os.path.dirname(__file__))

from test_bench_ingress import (  # noqa: E402
    N_NODES,
    SHARDS,
    SUITE_SESSIONS,
    _replay,
    _suite_trace,
)

PR_NUMBER = 10


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _SlowWorker:
    """A deliberately under-provisioned lane for the overload probe."""

    def __init__(self, lane: int, delay: float) -> None:
        self.lane = lane
        self.delay = delay
        self.handled = 0

    def process(self, event) -> None:
        time.sleep(self.delay)
        self.handled += 1

    def finish(self):
        from repro.ingress.workers import LaneResult
        from repro.proxy.node import NodeStats

        return LaneResult(
            lane=self.lane, stats=NodeStats(), handled=self.handled
        )


def _overload_probe(
    budget: float = 0.25,
    depth: int = 512,
    events: int = 2000,
) -> dict:
    """Measure the PR's admission path: p99 predicted lane delay under
    ADAPTIVE vs binary SHED at the same queue depth, same arrivals.

    The acceptance number the overload tests pin: the adaptive
    controller keeps the prediction near the budget while binary
    shedding lets it saturate at the full queue's drain time.
    """
    from repro.ingress.pipeline import IngressConfig, IngressPipeline
    from repro.ingress.queues import ShedPolicy
    from repro.overload.admission import AdaptiveConfig
    from repro.proxy.network import ProxyNetwork
    from repro.util.rng import RngStream

    def drive(policy, adaptive=None):
        network = ProxyNetwork(
            origins={},
            rng=RngStream(0, "bench"),
            n_nodes=1,
            instrument_enabled=False,
        )
        config = IngressConfig(
            executor="thread",
            queue_depth=depth,
            policy=policy,
            adaptive=adaptive,
        )
        pipeline = IngressPipeline(
            network, [_SlowWorker(0, delay=0.002)], config
        )
        samples = []
        try:
            for index in range(events):
                pipeline.tick(float(index))
                pipeline.submit(("event", index), f"10.0.{index % 24}.1")
                samples.append(pipeline.queue_delays().get(0, 0.0))
                time.sleep(0.0005)
        finally:
            result = pipeline.close()
        tail = sorted(samples[len(samples) // 4 :])
        p99 = tail[min(len(tail) - 1, int(len(tail) * 0.99))]
        return p99, result.shed

    shed_p99, shed_count = drive(ShedPolicy.SHED)
    adaptive_p99, adaptive_count = drive(
        ShedPolicy.ADAPTIVE,
        AdaptiveConfig(
            delay_budget=budget,
            ramp_requests=64,
            duty_cycle=4,
            fairness_half_life=1.0,
        ),
    )
    return {
        "delay_budget_seconds": budget,
        "queue_depth": depth,
        "events": events,
        "shed_p99_predicted_seconds": round(shed_p99, 4),
        "adaptive_p99_predicted_seconds": round(adaptive_p99, 4),
        "shed_dropped": shed_count,
        "adaptive_dropped": adaptive_count,
    }


def _serve_probe(sessions: int = 40, seed: int = 7) -> dict:
    """Measure the PR-10 front door: requests/sec through a live
    localhost ``DetectorServer`` driven by the agent swarm over real
    sockets (keep-alive HTTP/1.1, full pipeline per request)."""
    import asyncio

    from repro.http.uri import Url
    from repro.serve.server import DetectorServer, ServeConfig
    from repro.serve.swarm import SwarmConfig, run_swarm
    from repro.util.rng import RngStream
    from repro.workload.codeen import CodeenWeekConfig, CodeenWeekExperiment

    async def drive():
        experiment = CodeenWeekExperiment(
            CodeenWeekConfig(n_sessions=sessions, n_nodes=2, seed=seed)
        )
        network, entry_url = experiment.build_network(
            RngStream(seed, "serve")
        )
        server = DetectorServer(
            network,
            default_host=Url.parse(entry_url).host,
            config=ServeConfig(),
        )
        await server.start()
        started = time.perf_counter()
        result = await run_swarm(
            SwarmConfig(
                port=server.port, sessions=sessions, seed=seed,
                concurrency=16,
            ),
            entry_url,
        )
        elapsed = time.perf_counter() - started
        await server.close()
        return result, elapsed

    result, elapsed = asyncio.run(drive())
    return {
        "sessions": sessions,
        "requests": result.requests,
        "transport_errors": result.errors,
        "elapsed_seconds": round(elapsed, 3),
        "served_requests_per_sec": round(result.requests / elapsed, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sessions", type=int, default=SUITE_SESSIONS,
        help=f"suite size in sessions (default {SUITE_SESSIONS})",
    )
    parser.add_argument(
        "--executor", default="process",
        choices=("serial", "thread", "process"),
    )
    parser.add_argument(
        "--lanes-per-node", type=int, default=SHARDS,
        help="ingress lanes per node: 1 = per-node lanes (the pre-PR-7 "
             f"layout), {SHARDS} = one lane per state shard (default)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), f"BENCH_{PR_NUMBER}.json"
        ),
        help="trajectory JSON to write",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="also write the run's metrics snapshot as repro.obs JSON",
    )
    parser.add_argument(
        "--prom-out", default=None,
        help="also write the snapshot in Prometheus text format",
    )
    args = parser.parse_args(argv)

    records = _suite_trace(args.sessions)
    started = time.perf_counter()
    result = _replay(
        records,
        executor=args.executor,
        queue_depth=4096,
        lanes_per_node=args.lanes_per_node,
    )
    elapsed = time.perf_counter() - started
    assert result.requests_replayed == len(records)

    # ru_maxrss is KiB on Linux.  The process executor does its work in
    # child interpreters, so report the lane-side peak too.
    self_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    payload = {
        "bench": "ingress-shard-suite",
        "pr": PR_NUMBER,
        "sessions": args.sessions,
        "requests": len(records),
        "executor": args.executor,
        "lanes": N_NODES * args.lanes_per_node,
        "lanes_per_node": args.lanes_per_node,
        "shards": SHARDS,
        "elapsed_seconds": round(elapsed, 3),
        "sessions_per_sec": round(args.sessions / elapsed, 1),
        "requests_per_sec": round(len(records) / elapsed, 1),
        "peak_rss_kib": self_rss,
        "peak_lane_rss_kib": child_rss,
        "python": platform.python_version(),
        "cores": _cores(),
        # The PR-9 admission path under synthetic overload: adaptive
        # keeps the p99 prediction near the budget, binary SHED at the
        # same depth saturates.
        "overload": _overload_probe(),
        # The PR-10 live front door: the same pipeline served over
        # real sockets to the agent swarm.
        "serve": _serve_probe(),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {args.out}")

    if args.metrics_out or args.prom_out:
        from repro.obs.export import to_json, to_prometheus

        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(to_json(result.metrics))
                handle.write("\n")
            print(f"wrote {args.metrics_out}")
        if args.prom_out:
            with open(args.prom_out, "w", encoding="utf-8") as handle:
                handle.write(to_prometheus(result.metrics))
            print(f"wrote {args.prom_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
