"""Trace-subsystem throughput: the costs of log-driven deployment.

Replaying a week of CoDeeN traffic (~930k sessions, tens of millions of
requests) is only practical if CLF parsing and the replay event loop run
at proxy data rates; these benches measure both, plus what the
interleaved scheduler costs over the sequential driver for synthetic
workloads.
"""

from __future__ import annotations

import itertools

import pytest

from repro.proxy.network import ProxyNetwork
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.trace.clf import format_clf_line, parse_clf_line
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import ReplayConfig, TraceReplayEngine
from repro.util.rng import RngStream
from repro.workload.engine import WorkloadConfig, WorkloadEngine
from repro.workload.mixes import SMOKE

BENCH_TRACE_SESSIONS = 150

_SITE = SiteGenerator(SiteConfig(n_pages=16)).generate(RngStream(11, "bench"))
_ORIGIN = OriginServer(_SITE)
_ENTRY = f"http://{_SITE.host}{_SITE.home_path}"


def _build_engine(mode: str, network: ProxyNetwork) -> WorkloadEngine:
    return WorkloadEngine(
        network,
        SMOKE,
        _ENTRY,
        RngStream(31, "bench-wl"),
        WorkloadConfig(
            n_sessions=BENCH_TRACE_SESSIONS,
            captcha_enabled=False,
            mode=mode,
        ),
    )


def _network() -> ProxyNetwork:
    return ProxyNetwork(
        origins={_SITE.host: _ORIGIN},
        rng=RngStream(77, "bench-net"),
        n_nodes=2,
    )


@pytest.fixture(scope="module")
def recorded_trace():
    """One recorded workload shared by the replay benches (in memory)."""
    network = _network()
    recorder = TraceRecorder()
    recorder.attach(network)
    result = _build_engine("sequential", network).run()
    recorder.detach(network)
    recorder.annotate_ground_truth(result.records)
    return recorder.sorted_records(), recorder.sorted_probes()


def test_bench_clf_parse_throughput(benchmark, recorded_trace):
    """CLF lines parsed per second (the log-ingestion floor)."""
    records, _ = recorded_trace
    lines = [format_clf_line(record) for record in records]
    cycle = itertools.cycle(lines)

    parsed = benchmark(lambda: parse_clf_line(next(cycle)))
    assert parsed.status >= 100
    benchmark.extra_info["trace_lines"] = len(lines)


def test_bench_clf_format_throughput(benchmark, recorded_trace):
    """CLF lines rendered per second (the export path)."""
    records, _ = recorded_trace
    cycle = itertools.cycle(records)

    line = benchmark(lambda: format_clf_line(next(cycle)))
    assert line


def test_bench_trace_replay_requests_per_second(benchmark, recorded_trace):
    """Full replay throughput: heap merge + detection pipeline."""
    records, probes = recorded_trace

    def replay():
        engine = TraceReplayEngine(
            ProxyNetwork(
                origins={},
                rng=RngStream(0, "bench-replay"),
                n_nodes=2,
                instrument_enabled=False,
            ),
            ReplayConfig(assume_sorted=True),
        )
        return engine.replay(records, probes=probes)

    result = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert result.requests_replayed == len(records)
    benchmark.extra_info["requests"] = len(records)
    benchmark.extra_info["probes"] = len(probes)


def test_bench_sequential_engine(benchmark):
    """Baseline: the one-session-at-a-time driver."""
    result = benchmark.pedantic(
        lambda: _build_engine("sequential", _network()).run(),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["requests"] = result.stats.requests


def test_bench_interleaved_engine(benchmark):
    """The event-heap scheduler on the same workload (overhead check)."""
    result = benchmark.pedantic(
        lambda: _build_engine("interleaved", _network()).run(),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["requests"] = result.stats.requests
