"""Trajectory guard: committed BENCH_*.json files must not cliff.

Each PR commits one ``BENCH_<n>.json`` produced by
``bench_trajectory.py``.  This check reads the two most recent files
and fails if throughput fell off a cliff between them — a regression
becomes a red test in the PR that introduced it, not an archaeology
exercise over CI artifacts.

The committed numbers are single runs on whatever machine produced
them, so the band is deliberately generous (30%): it exists to catch
"we made replay 3x slower", not to litigate scheduler noise.  When the
two files were produced in different environments (core count, python
minor, lane topology) sessions/sec is not comparable and the check
skips with an explanation instead of guessing.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

TOLERANCE = 0.70  # latest must keep >= 70% of the prior sessions/sec

_HERE = os.path.dirname(__file__)


def _trajectory() -> list[dict]:
    payloads = []
    for path in glob.glob(os.path.join(_HERE, "BENCH_*.json")):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["_file"] = os.path.basename(path)
        payloads.append(payload)
    return sorted(payloads, key=lambda p: p["pr"])


def _environment(payload: dict) -> tuple:
    python_minor = ".".join(payload["python"].split(".")[:2])
    return (
        payload["cores"],
        python_minor,
        payload["bench"],
        payload["executor"],
        payload.get("lanes"),
        payload.get("shards"),
        payload["sessions"],
    )


def test_sessions_per_sec_keeps_the_trajectory():
    trajectory = _trajectory()
    if len(trajectory) < 2:
        pytest.skip("need two committed BENCH_*.json files to compare")
    prior, latest = trajectory[-2], trajectory[-1]
    if _environment(prior) != _environment(latest):
        pytest.skip(
            f"{prior['_file']} and {latest['_file']} were produced in "
            f"different environments ({_environment(prior)} vs "
            f"{_environment(latest)}): sessions/sec not comparable"
        )
    floor = prior["sessions_per_sec"] * TOLERANCE
    assert latest["sessions_per_sec"] >= floor, (
        f"{latest['_file']}: {latest['sessions_per_sec']} sessions/sec "
        f"is below {TOLERANCE:.0%} of {prior['_file']}'s "
        f"{prior['sessions_per_sec']} — the suite got materially "
        "slower between these PRs"
    )


def test_adaptive_admission_keeps_predicted_delay_bounded():
    """Gate the PR-9 admission path: the committed overload probe must
    show adaptive admission holding the predicted delay down where
    binary shedding at the same queue depth saturates."""
    trajectory = _trajectory()
    latest = trajectory[-1]
    overload = latest.get("overload")
    if overload is None:
        pytest.skip(
            f"{latest['_file']} predates the overload probe"
        )
    budget = overload["delay_budget_seconds"]
    adaptive = overload["adaptive_p99_predicted_seconds"]
    binary = overload["shed_p99_predicted_seconds"]
    # Both modes were genuinely overloaded when the numbers were taken.
    assert overload["adaptive_dropped"] > 0
    assert overload["shed_dropped"] > 0
    # Binary shedding saturates past the budget; adaptive stays a
    # factor lower and inside a generous band of the budget (committed
    # numbers are single runs on whatever machine produced them).
    assert binary > budget
    assert adaptive < binary / 2
    assert adaptive <= budget * 2


def test_committed_trajectory_files_are_well_formed():
    trajectory = _trajectory()
    assert trajectory, "no committed BENCH_*.json files found"
    required = {
        "bench",
        "pr",
        "sessions",
        "requests",
        "executor",
        "lanes",
        "shards",
        "elapsed_seconds",
        "sessions_per_sec",
        "requests_per_sec",
        "python",
        "cores",
    }
    prs = [p["pr"] for p in trajectory]
    assert prs == sorted(set(prs)), "duplicate or unsorted PR numbers"
    for payload in trajectory:
        missing = required - payload.keys()
        assert not missing, f"{payload['_file']} lacks {sorted(missing)}"
        assert payload["sessions_per_sec"] > 0
        assert payload["requests_per_sec"] > 0
