"""Hot-path microbenchmarks: the per-request costs a deployment pays.

These are the quantities that decide whether the scheme can run inline at
proxy data rates (the paper's core engineering argument against the
heavier ML approach, §4.2).
"""

from __future__ import annotations

import itertools

from repro.http.headers import Headers
from repro.http.message import Method, Request
from repro.http.uri import Url
from repro.instrument.keys import InstrumentationRegistry
from repro.instrument.rewriter import InstrumentConfig, PageInstrumenter
from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.dataset import build_matrix
from repro.site.generator import SiteConfig, SiteGenerator
from repro.site.origin import OriginServer
from repro.proxy.node import ProxyNode
from repro.util.rng import RngStream

_SITE = SiteGenerator(SiteConfig(n_pages=20)).generate(RngStream(1, "bench"))
_PAGE_HTML = _SITE.pages[_SITE.home_path].render()
_PAGE_URL = Url.parse(f"http://{_SITE.host}{_SITE.home_path}")


def test_bench_page_instrumentation(benchmark):
    """Pages rewritten per second (runs on every served HTML page)."""
    registry = InstrumentationRegistry(per_ip_cap=100000)
    instrumenter = PageInstrumenter(
        registry, RngStream(2, "bench"), InstrumentConfig()
    )
    counter = itertools.count()

    def instrument():
        i = next(counter)
        return instrumenter.instrument(
            _PAGE_HTML, _PAGE_URL, f"10.0.{i % 250}.{i % 199}", float(i)
        )

    result = benchmark(instrument)
    assert result.added_bytes > 0
    benchmark.extra_info["page_bytes"] = len(_PAGE_HTML)


def test_bench_registry_match(benchmark):
    """Probe-table lookups per second (runs on every request)."""
    registry = InstrumentationRegistry(per_ip_cap=1024)
    instrumenter = PageInstrumenter(
        registry, RngStream(3, "bench"), InstrumentConfig()
    )
    page = instrumenter.instrument(_PAGE_HTML, _PAGE_URL, "10.1.1.1", 0.0)
    css = next(p for p in page.probes if p.kind.value == "css_beacon")
    request = Request(
        method=Method.GET,
        url=Url.parse(f"http://{_SITE.host}{css.path}"),
        client_ip="10.1.1.1",
        headers=Headers(),
        timestamp=1.0,
    )

    hit = benchmark(registry.match, request)
    assert hit is not None


def test_bench_proxy_request_path(benchmark):
    """Full node.handle() throughput on a page request."""
    node = ProxyNode(
        node_id="bench",
        origins={_SITE.host: OriginServer(_SITE)},
        rng=RngStream(4, "bench"),
    )
    counter = itertools.count()

    def one_request():
        i = next(counter)
        request = Request(
            method=Method.GET,
            url=_PAGE_URL,
            client_ip=f"10.2.{i % 250}.{i % 199}",
            headers=Headers([("User-Agent", "bench-agent")]),
            timestamp=float(i),
        )
        return node.handle(request)

    response = benchmark(one_request)
    assert response.status == 200


def test_bench_adaboost_training(benchmark, ml_dataset):
    """200-round training time on the benchmark dataset (§4.2's cost)."""
    x, y = build_matrix(ml_dataset.examples, 160)

    model = benchmark.pedantic(
        lambda: AdaBoostClassifier(n_rounds=200).fit(x, y),
        rounds=1,
        iterations=1,
    )
    assert model.rounds > 0
    benchmark.extra_info["n_examples"] = len(y)


def test_bench_adaboost_scoring(benchmark, ml_dataset):
    """Per-session scoring throughput (the online-deployment concern)."""
    x, y = build_matrix(ml_dataset.examples, 160)
    model = AdaBoostClassifier(n_rounds=200).fit(x, y)

    predictions = benchmark(model.predict, x)
    assert predictions.shape == y.shape
