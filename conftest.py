"""Repo-root pytest configuration: deadlock protection for lane tests.

Process-lane tests can deadlock rather than fail if a queue handshake
regresses, which turns one broken test into a hung CI job.  Every test
therefore runs under a timeout:

* with the real ``pytest-timeout`` plugin installed (CI does this), it
  enforces the limit; per-test ``@pytest.mark.timeout(N)`` overrides
  work as documented;
* without it, a minimal SIGALRM watchdog below enforces the same
  semantics on POSIX mains threads, so a plain ``pytest`` run in a
  bare environment still fails fast instead of hanging.

The fallback deliberately stays tiny: one alarm per test, marker
override honoured, no timeout for non-main threads or platforms
without SIGALRM (those fall back to no enforcement, matching the
pre-timeout status quo).
"""

from __future__ import annotations

import signal

import pytest

DEFAULT_TIMEOUT_SECONDS = 300.0

_HAVE_PYTEST_TIMEOUT = True
try:  # the container image may not ship the plugin
    import pytest_timeout  # noqa: F401
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_configure(config):
    if not _HAVE_PYTEST_TIMEOUT:
        # The marker is normally registered by the plugin; keep
        # ``@pytest.mark.timeout(...)`` valid under --strict-markers.
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer "
            "(fallback watchdog; pytest-timeout not installed)",
        )


def _timeout_for(item) -> float | None:
    marker = item.get_closest_marker("timeout")
    if marker is None:
        return DEFAULT_TIMEOUT_SECONDS
    if marker.args:
        return float(marker.args[0])
    if "timeout" in marker.kwargs:
        return float(marker.kwargs["timeout"])
    return DEFAULT_TIMEOUT_SECONDS


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _HAVE_PYTEST_TIMEOUT or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = _timeout_for(item)
    if not seconds or seconds <= 0:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded {seconds:g}s "
            "(fallback timeout watchdog)"
        )

    try:
        previous = signal.signal(signal.SIGALRM, _expired)
    except ValueError:  # not the main thread; no enforcement
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
